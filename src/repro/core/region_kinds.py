"""Structural classification of SESE regions (the Figure 7 heuristic).

The paper runs "a simple pattern-matching pass" identifying each region as a
basic block, a case construct (if-then-else included), a loop, a dag, or a
cyclic unstructured region, with each region weighted by the number of
nested maximal SESE regions it contains (blocks weigh 1, an if-then-else
weighs 2).  The classifier here works on the region's *collapsed* CFG, so
nested regions participate as single summary nodes -- exactly the view the
paper's weighting implies.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Set

from repro.cfg.graph import CFG, NodeId
from repro.core.pst import ProgramStructureTree
from repro.core.sese import SESERegion


class RegionKind(enum.Enum):
    """The five structural kinds of Figure 7."""

    BLOCK = "block"
    CASE = "case"  # if-then-else and n-way case constructs
    LOOP = "loop"
    DAG = "dag"  # acyclic but not block/case
    CYCLIC = "cyclic"  # cyclic and not a single natural loop

    @property
    def is_structured(self) -> bool:
        return self in (RegionKind.BLOCK, RegionKind.CASE, RegionKind.LOOP)


def classify_region(pst: ProgramStructureTree, region: SESERegion) -> RegionKind:
    """Classify one region by the shape of its collapsed CFG."""
    sub, _ = pst.collapsed_cfg(region)
    interior = [n for n in sub.nodes if n != sub.start and n != sub.end]
    if not interior:
        return RegionKind.BLOCK
    if _is_acyclic(sub):
        if _is_chain(sub, interior):
            return RegionKind.BLOCK
        if _is_case(sub, interior):
            return RegionKind.CASE
        return RegionKind.DAG
    if _is_single_loop(sub, interior):
        return RegionKind.LOOP
    return RegionKind.CYCLIC


def classify_pst(pst: ProgramStructureTree) -> Dict[SESERegion, RegionKind]:
    """Kind of every region (root included)."""
    return {region: classify_region(pst, region) for region in pst.regions()}


def region_weight(region: SESERegion) -> int:
    """The Figure 7 weight: nested maximal regions, at least 1."""
    return max(1, len(region.children))


def is_completely_structured(kinds: Dict[SESERegion, RegionKind]) -> bool:
    """True iff every region of the PST has a structured kind."""
    return all(kind.is_structured for kind in kinds.values())


# ----------------------------------------------------------------------
# shape predicates on the collapsed CFG
# ----------------------------------------------------------------------

def _is_acyclic(sub: CFG) -> bool:
    indeg = {n: sub.in_degree(n) for n in sub.nodes}
    ready = [n for n, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for nxt in sub.successors(node):
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    return seen == sub.num_nodes


def _is_chain(sub: CFG, interior: List[NodeId]) -> bool:
    """start -> n1 -> ... -> nk -> end with no branching anywhere."""
    node: NodeId = sub.start
    visited = 0
    while node != sub.end:
        if sub.out_degree(node) != 1:
            return False
        node = sub.successors(node)[0]
        if node != sub.end and sub.in_degree(node) != 1:
            return False
        visited += 1
    return visited == len(interior) + 1


def _is_case(sub: CFG, interior: List[NodeId]) -> bool:
    """One branch node fanning out to disjoint chain arms that rejoin.

    Covers if-then (one empty arm), if-then-else and n-way case constructs.
    Because nested constructs are already collapsed to summary nodes and
    sequentially composed regions are siblings, an arm is in general a
    *chain* of nodes, not a single node.  Shape: start -> b; each successor
    of b starts a chain of single-in single-out nodes ending at m; m -> end.
    """
    if sub.out_degree(sub.start) != 1:
        return False
    branch = sub.successors(sub.start)[0]
    if branch == sub.end or sub.out_degree(branch) < 2:
        return False
    if sub.in_degree(sub.end) != 1:
        return False
    merge = sub.predecessors(sub.end)[0]
    if merge == branch:
        return False
    covered: Set[NodeId] = {branch, merge}
    for edge in sub.out_edges(branch):
        node = edge.target
        while node != merge:
            if node in covered or node in (sub.end, sub.start, branch):
                return False
            if sub.in_degree(node) != 1 or sub.out_degree(node) != 1:
                return False
            covered.add(node)
            node = sub.successors(node)[0]
    return len(covered) == len(interior)


def _is_single_loop(sub: CFG, interior: List[NodeId]) -> bool:
    """A single natural loop: all retreating edges target the header.

    The header is the region's entry target; the region is a loop when the
    graph minus the edges into the header (from inside) is acyclic and every
    interior node lies on a cycle through the header or on the straight path
    through the loop.  This covers ``while``, ``repeat-until`` and ``for``
    shapes once their bodies have been collapsed.
    """
    if sub.out_degree(sub.start) != 1:
        return False
    header = sub.successors(sub.start)[0]
    if header == sub.end:
        return False
    # Remove latch edges (interior -> header); the rest must be acyclic.
    indeg: Dict[NodeId, int] = {n: 0 for n in sub.nodes}
    succs: Dict[NodeId, List[NodeId]] = {n: [] for n in sub.nodes}
    for edge in sub.edges:
        if edge.target == header and edge.source != sub.start:
            continue
        succs[edge.source].append(edge.target)
        indeg[edge.target] += 1
    ready = [n for n, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for nxt in succs[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                ready.append(nxt)
    return seen == sub.num_nodes
