"""Canonical SESE regions from cycle-equivalence classes (§3.6).

Within one cycle-equivalence class, the edges are totally ordered by
dominance (each dominates the next, and each postdominates the previous); a
directed DFS from ``start`` visits them in exactly that order, because the
tree path that discovers an edge's source must already contain every edge
dominating it.  Each *adjacent* pair in the order is a canonical SESE region
(Definition 5); non-adjacent pairs are SESE regions too but not canonical.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.graph import CFG, Edge, NodeId
from repro.cfg.traversal import dfs_edges
from repro.core.cycle_equiv import CycleEquivalence, cycle_equivalence_of_cfg


class SESERegion:
    """A single entry single exit region ``(entry, exit)``.

    The *root* region of a PST is a pseudo-region with ``entry is None`` and
    ``exit is None`` standing for the whole procedure.  ``own_nodes`` are the
    nodes whose innermost enclosing region is this one; the full interior is
    available via :meth:`nodes`.
    """

    __slots__ = ("entry", "exit", "class_id", "region_id", "parent", "children", "own_nodes", "depth")

    def __init__(
        self,
        entry: Optional[Edge],
        exit: Optional[Edge],
        class_id: Optional[int] = None,
        region_id: int = -1,
    ):
        self.entry = entry
        self.exit = exit
        self.class_id = class_id
        self.region_id = region_id
        self.parent: Optional["SESERegion"] = None
        self.children: List["SESERegion"] = []
        self.own_nodes: List[NodeId] = []
        self.depth: int = 0

    @property
    def is_root(self) -> bool:
        return self.entry is None

    def nodes(self) -> List[NodeId]:
        """All nodes contained in the region, including nested ones."""
        out: List[NodeId] = []
        stack: List["SESERegion"] = [self]
        while stack:
            region = stack.pop()
            out.extend(region.own_nodes)
            stack.extend(region.children)
        return out

    def size(self) -> int:
        """Number of contained nodes (nested regions included)."""
        total = 0
        stack: List["SESERegion"] = [self]
        while stack:
            region = stack.pop()
            total += len(region.own_nodes)
            stack.extend(region.children)
        return total

    def descendants(self) -> List["SESERegion"]:
        """All regions strictly inside this one (preorder)."""
        out: List["SESERegion"] = []
        stack = list(reversed(self.children))
        while stack:
            region = stack.pop()
            out.append(region)
            stack.extend(reversed(region.children))
        return out

    def describe(self) -> str:
        """Short human-readable label (used by DOT export)."""
        if self.is_root:
            return "root"
        assert self.entry is not None and self.exit is not None
        return (
            f"R{self.region_id} "
            f"({self.entry.source}->{self.entry.target} .. "
            f"{self.exit.source}->{self.exit.target})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SESERegion<{self.describe()}>"


def canonical_sese_regions(
    cfg: CFG, equiv: Optional[CycleEquivalence] = None
) -> List[SESERegion]:
    """All canonical SESE regions of ``cfg``, in DFS discovery order.

    ``equiv`` may be passed to reuse a previously computed cycle
    equivalence over ``cfg.edges`` (e.g. from
    :func:`repro.core.cycle_equiv.cycle_equivalence_of_cfg`).
    """
    if equiv is None:
        equiv = cycle_equivalence_of_cfg(cfg)
    last_in_class: Dict[int, Edge] = {}
    regions: List[SESERegion] = []
    for edge in dfs_edges(cfg):
        cls = equiv.class_of[edge]
        prev = last_in_class.get(cls)
        if prev is not None:
            regions.append(SESERegion(prev, edge, class_id=cls, region_id=len(regions)))
        last_in_class[cls] = edge
    return regions
