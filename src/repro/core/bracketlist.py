"""The BracketList abstract data type of §3.5.

A bracket list is a stack of *brackets* (backedges of the undirected DFS
tree) that additionally supports deletion from any position and O(1)
concatenation.  The concrete representation follows the paper exactly: a
doubly-linked list plus a tail pointer and an explicit size; each bracket
remembers the cell that currently holds it, which is what makes ``delete``
constant time.

All six operations -- ``create``, ``size``, ``push``, ``top``, ``delete``,
``concat`` -- are O(1).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

# Fault-injection hook (repro.resilience.faults installs/clears a plan here;
# see site "bracketlist/push-bottom").  Always None in production.
_FAULTS = None


class Bracket:
    """A bracket: a backedge of the undirected DFS, real or capping.

    Carries the two per-bracket memo fields of the algorithm:
    ``recent_size`` (size of the bracket list when this bracket was most
    recently the topmost element) and ``recent_class`` (the equivalence class
    handed out at that moment).  Real backedges also carry ``class_id``, the
    cycle-equivalence class of the backedge itself.
    """

    __slots__ = ("payload", "is_capping", "class_id", "recent_size", "recent_class", "cell")

    def __init__(self, payload: object = None, is_capping: bool = False):
        self.payload = payload
        self.is_capping = is_capping
        self.class_id: Optional[int] = None
        self.recent_size: int = -1
        self.recent_class: Optional[int] = None
        self.cell: Optional[_Cell] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "capping" if self.is_capping else "bracket"
        return f"<{kind} {self.payload!r}>"


class _Cell:
    __slots__ = ("bracket", "prev", "next")

    def __init__(self, bracket: Bracket):
        self.bracket = bracket
        self.prev: Optional[_Cell] = None
        self.next: Optional[_Cell] = None


class BracketList:
    """Doubly-linked bracket stack with O(1) push/top/delete/concat/size.

    The *top* is the most recently pushed bracket.  ``concat`` splices
    another list *below* this one (this list's top stays on top) and empties
    the other list; after a concat, brackets that lived in the other list are
    deletable through this one.
    """

    __slots__ = ("_head", "_tail", "_size")

    def __init__(self) -> None:
        self._head: Optional[_Cell] = None  # top of the stack
        self._tail: Optional[_Cell] = None  # bottom of the stack
        self._size = 0

    @property
    def size(self) -> int:
        return self._size

    def __len__(self) -> int:
        return self._size

    def push(self, bracket: Bracket) -> None:
        """Push ``bracket`` on top.  The bracket must not be in any list."""
        if bracket.cell is not None:
            raise ValueError(f"{bracket!r} is already in a bracket list")
        cell = _Cell(bracket)
        bracket.cell = cell
        if _FAULTS is not None and _FAULTS.should_fire("bracketlist/push-bottom"):
            # Injected fault: append at the bottom instead of the top.  The
            # list stays structurally sound (delete/concat keep working) but
            # the stack order -- which the compact <top, size> naming of
            # §3.5 depends on -- is silently corrupted.
            cell.prev = self._tail
            if self._tail is not None:
                self._tail.next = cell
            self._tail = cell
            if self._head is None:
                self._head = cell
            self._size += 1
            return
        cell.next = self._head
        if self._head is not None:
            self._head.prev = cell
        self._head = cell
        if self._tail is None:
            self._tail = cell
        self._size += 1

    def top(self) -> Bracket:
        """The topmost (most recently pushed) bracket."""
        if self._head is None:
            raise IndexError("top of empty BracketList")
        return self._head.bracket

    def delete(self, bracket: Bracket) -> None:
        """Remove ``bracket`` from any position in this list.  O(1)."""
        cell = bracket.cell
        if cell is None:
            raise ValueError(f"{bracket!r} is not in a bracket list")
        if cell.prev is not None:
            cell.prev.next = cell.next
        else:
            self._head = cell.next
        if cell.next is not None:
            cell.next.prev = cell.prev
        else:
            self._tail = cell.prev
        bracket.cell = None
        cell.prev = cell.next = None
        self._size -= 1

    def concat(self, other: "BracketList") -> "BracketList":
        """Splice ``other`` below this list; ``other`` becomes empty.  O(1)."""
        if other is self:
            raise ValueError("cannot concat a BracketList with itself")
        if other._size == 0:
            return self
        if self._size == 0:
            self._head, self._tail = other._head, other._tail
        else:
            assert self._tail is not None and other._head is not None
            self._tail.next = other._head
            other._head.prev = self._tail
            self._tail = other._tail
        self._size += other._size
        other._head = other._tail = None
        other._size = 0
        return self

    def __iter__(self) -> Iterator[Bracket]:
        """Brackets from top to bottom (for tests and debugging)."""
        cell = self._head
        while cell is not None:
            yield cell.bracket
            cell = cell.next

    def to_list(self) -> List[Bracket]:
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BracketList(size={self._size}, top={self._head.bracket if self._head else None!r})"
