"""Slow, independently derived cycle-equivalence algorithms.

Two oracles validate the fast Figure 4 implementation:

* :func:`cycle_equivalence_bruteforce` -- enumerate *all* simple cycles of
  the directed multigraph and bucket edges by the exact set of cycles
  containing them.  This is Definition 4 executed literally (exponential;
  use on graphs with at most ~14 nodes).
* :func:`cycle_equivalence_bracket_sets` -- the paper's §3.3 "slow
  algorithm": undirected DFS, full bracket set per tree edge (Theorem 5),
  backedge/tree-edge merging when a backedge is the sole bracket
  (Theorem 4).  O(V·B) time; usable on medium graphs and structurally very
  different from the fast algorithm, so it is a meaningful cross-check.

Both return a mapping ``edge -> frozenset-or-int`` grouping edges exactly as
the fast algorithm's integer classes should.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.cfg.graph import CFG, Edge, InvalidCFGError, NodeId


def enumerate_simple_cycles(graph: CFG, limit: int = 1_000_000) -> List[Tuple[Edge, ...]]:
    """All simple cycles (edge sequences, node-disjoint) of a directed graph.

    Multigraph-aware: parallel edges yield distinct cycles; a self-loop is a
    one-edge cycle.  Cycles are canonicalized to start at their
    smallest-indexed node so each is reported once.  Raises
    :class:`RuntimeError` if more than ``limit`` cycles are found.
    """
    order = {node: i for i, node in enumerate(graph.nodes)}
    cycles: List[Tuple[Edge, ...]] = []

    for root in graph.nodes:
        root_rank = order[root]
        # DFS over paths from root using only nodes with rank >= root_rank,
        # never revisiting a node; closing back at root yields a cycle.
        path_edges: List[Edge] = []
        on_path: Set[NodeId] = {root}

        def explore(node: NodeId) -> None:
            for edge in graph.out_edges(node):
                target = edge.target
                if target == root:
                    cycles.append(tuple(path_edges + [edge]))
                    if len(cycles) > limit:
                        raise RuntimeError("cycle enumeration limit exceeded")
                    continue
                if order[target] <= root_rank or target in on_path:
                    continue
                on_path.add(target)
                path_edges.append(edge)
                explore(target)
                path_edges.pop()
                on_path.discard(target)

        explore(root)
    return cycles


def cycle_equivalence_bruteforce(graph: CFG) -> Dict[Edge, FrozenSet[int]]:
    """Definition 4 executed literally over all simple cycles.

    Every edge of a strongly connected graph lies on at least one cycle; an
    :class:`InvalidCFGError` is raised otherwise, since cycle equivalence is
    only defined within a strongly connected component.
    """
    cycles = enumerate_simple_cycles(graph)
    membership: Dict[Edge, Set[int]] = {edge: set() for edge in graph.edges}
    for index, cycle in enumerate(cycles):
        for edge in cycle:
            membership[edge].add(index)
    for edge, cycles_of_edge in membership.items():
        if not cycles_of_edge:
            raise InvalidCFGError(f"edge {edge!r} lies on no cycle; graph is not strongly connected")
    return {edge: frozenset(ids) for edge, ids in membership.items()}


def cycle_equivalence_bracket_sets(graph: CFG) -> Dict[Edge, FrozenSet]:
    """The §3.3 slow algorithm: compare full bracket sets (Theorems 4 & 5).

    Returns a mapping from each directed edge to a hashable class key; edges
    with equal keys are cycle equivalent.  Tree edges are keyed by their full
    bracket set; a backedge is keyed by the singleton of itself, which by
    Theorem 4 matches exactly the tree edges it is the sole bracket of.
    Self-loops get unique keys.
    """
    if graph.num_nodes == 0:
        return {}
    root = graph.nodes[0]

    # Undirected DFS with explicit edge identity.
    adjacency: Dict[NodeId, List[Tuple[Edge, NodeId]]] = {n: [] for n in graph.nodes}
    self_loops: List[Edge] = []
    for edge in graph.edges:
        if edge.is_self_loop:
            self_loops.append(edge)
            continue
        adjacency[edge.source].append((edge, edge.target))
        adjacency[edge.target].append((edge, edge.source))

    dfsnum: Dict[NodeId, int] = {root: 0}
    parent_edge: Dict[NodeId, Edge] = {}
    visit_order: List[NodeId] = [root]
    processed: Set[Edge] = set()
    backedges: List[Tuple[Edge, NodeId, NodeId]] = []  # (edge, origin, dest)
    stack: List[Tuple[NodeId, int]] = [(root, 0)]
    while stack:
        node, index = stack[-1]
        if index >= len(adjacency[node]):
            stack.pop()
            continue
        stack[-1] = (node, index + 1)
        edge, other = adjacency[node][index]
        if edge in processed:
            continue
        processed.add(edge)
        if other not in dfsnum:
            dfsnum[other] = len(visit_order)
            visit_order.append(other)
            parent_edge[other] = edge
            stack.append((other, 0))
        else:
            backedges.append((edge, node, other))

    if len(dfsnum) != graph.num_nodes:
        raise InvalidCFGError("graph is not connected in its undirected form")

    # Subtree intervals for ancestor tests.  The tree parent of `node` is the
    # other endpoint of its parent edge (self-loops were excluded, so the
    # endpoints are distinct).
    children: Dict[NodeId, List[NodeId]] = {n: [] for n in graph.nodes}
    for node in visit_order[1:]:
        pedge = parent_edge[node]
        parent = pedge.target if pedge.source == node else pedge.source
        children[parent].append(node)

    tin: Dict[NodeId, int] = {}
    tout: Dict[NodeId, int] = {}
    clock = 0
    walk: List[Tuple[NodeId, bool]] = [(root, False)]
    while walk:
        node, closing = walk.pop()
        if closing:
            tout[node] = clock
            clock += 1
            continue
        tin[node] = clock
        clock += 1
        walk.append((node, True))
        for child in reversed(children[node]):
            walk.append((child, False))

    def in_subtree(descendant: NodeId, ancestor: NodeId) -> bool:
        return tin[ancestor] <= tin[descendant] and tout[descendant] <= tout[ancestor]

    # Bracket set of the tree edge into `node`: backedges with origin in
    # subtree(node) and destination a proper ancestor of node.
    keys: Dict[Edge, FrozenSet] = {}
    for node in visit_order[1:]:
        brackets = set()
        for edge, origin, dest in backedges:
            # Orient: the endpoint deeper in the tree is the origin.
            lo, hi = (origin, dest) if dfsnum[origin] > dfsnum[dest] else (dest, origin)
            if in_subtree(lo, node) and dfsnum[hi] < dfsnum[node]:
                brackets.add(edge)
        if not brackets:
            raise InvalidCFGError(
                f"tree edge into {node!r} has no brackets (bridge); "
                "input is not strongly connected"
            )
        keys[parent_edge[node]] = frozenset(brackets)
    for edge, _, _ in backedges:
        keys[edge] = frozenset({edge})
    for edge in self_loops:
        keys[edge] = frozenset({("self", edge.eid)})
    return keys


def group_by_class(classes: Dict[Edge, object]) -> Dict[object, List[Edge]]:
    """Invert an edge->key mapping into key -> sorted edge list."""
    out: Dict[object, List[Edge]] = {}
    for edge, key in classes.items():
        out.setdefault(key, []).append(edge)
    for edges in out.values():
        edges.sort()
    return out


def same_partition(a: Dict[Edge, object], b: Dict[Edge, object]) -> bool:
    """True iff two edge->key mappings induce the same partition of edges."""
    if set(a) != set(b):
        return False
    groups_a = {frozenset(edges) for edges in group_by_class(a).values()}
    groups_b = {frozenset(edges) for edges in group_by_class(b).values()}
    return groups_a == groups_b
