"""The Program Structure Tree (§2.2, §3.6).

Nodes of the PST are canonical SESE regions; edges represent immediate
nesting.  A pseudo-region (the *root*) stands for the whole procedure so the
top-level canonical regions have a parent.

Construction walks the directed DFS tree of the CFG maintaining a stack of
open regions:

* crossing a region's **entry edge** (always a tree edge -- the entry edge
  dominates its target, so it is the edge that discovers it) pushes the
  region;
* crossing a region's **exit edge** *as a tree edge* pops it (the DFS then
  explores nodes beyond the region);
* **backtracking** over a tree edge undoes whatever that edge did, so the
  stack always reflects the regions containing the current tree path's tip.

With this discipline the innermost region containing a node is simply the
top of the stack when the node is discovered, and a region's parent is the
top of the stack when the region is pushed (Theorem 1 guarantees proper
nesting).  The runtime asserts the stack discipline rather than assuming it.

The module also provides ``collapsed_cfg``: the view of one region as a CFG
of its own, with immediately nested regions collapsed to summary nodes --
the basis of every divide-and-conquer application in §6.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, NodeId
from repro.core.cycle_equiv import CycleEquivalence, cycle_equivalence_of_cfg
from repro.core.sese import SESERegion, canonical_sese_regions
from repro.kernel.pst import kernel_build_pst
from repro.kernel.registry import shared_frozen
from repro.obs import observer as _obs

REGION_ENTRY = "$entry$"
REGION_EXIT = "$exit$"


class ProgramStructureTree:
    """The PST of a CFG: canonical SESE regions organized by nesting."""

    def __init__(self, cfg: CFG, root: SESERegion, canonical: List[SESERegion]):
        self.cfg = cfg
        self.root = root
        self._canonical: Optional[List[SESERegion]] = canonical
        self.region_of_node: Dict[NodeId, SESERegion] = {}
        self.entry_region: Dict[Edge, SESERegion] = {r.entry: r for r in canonical}
        self.exit_region: Dict[Edge, SESERegion] = {r.exit: r for r in canonical}
        for region in [root] + canonical:
            for node in region.own_nodes:
                self.region_of_node[node] = region
        self._edges_by_level: Optional[Dict[int, List[Edge]]] = None
        self._collapsed_cache: Dict[int, Tuple[CFG, Dict[Edge, Edge]]] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def regions(self) -> List[SESERegion]:
        """All regions including the root, in preorder."""
        return [self.root] + self.root.descendants()

    def canonical_regions(self) -> List[SESERegion]:
        """All canonical SESE regions (the root pseudo-region excluded)."""
        if self._canonical is None:
            # An incremental splice invalidates the list rather than
            # patching it; every non-root region is canonical, so the
            # tree itself is the authority.
            self._canonical = self.root.descendants()
        return list(self._canonical)

    def region_of(self, node: NodeId) -> SESERegion:
        """The innermost region containing ``node``."""
        return self.region_of_node[node]

    def edge_level(self, edge: Edge) -> SESERegion:
        """The innermost region an edge belongs to.

        Boundary edges (a region's entry or exit) belong to the region's
        *parent*; all other edges belong to the innermost region of their
        endpoints (which agree for non-boundary edges).
        """
        region = self.entry_region.get(edge) or self.exit_region.get(edge)
        if region is not None:
            assert region.parent is not None
            return region.parent
        return self.region_of_node[edge.source]

    def contains(self, region: SESERegion, node: NodeId) -> bool:
        """True iff ``node`` lies inside ``region`` (possibly nested)."""
        r: Optional[SESERegion] = self.region_of_node[node]
        while r is not None:
            if r is region:
                return True
            r = r.parent
        return False

    def depth_of(self, region: SESERegion) -> int:
        return region.depth

    def max_depth(self) -> int:
        """Deepest canonical-region nesting depth (root is depth 0)."""
        return max((r.depth for r in self.canonical_regions()), default=0)

    def child_summary_id(self, child: SESERegion) -> NodeId:
        """The summary-node id used for ``child`` in collapsed views."""
        return ("region", child.region_id)

    # ------------------------------------------------------------------
    # collapsed views (divide and conquer substrate)
    # ------------------------------------------------------------------
    def level_edges(self, region: SESERegion) -> List[Edge]:
        """Edges whose innermost level is ``region`` (see :meth:`edge_level`).

        Computed for all regions in one pass over the CFG's edges and cached.
        """
        if self._edges_by_level is None:
            self._edges_by_level = {}
            for edge in self.cfg.edges:
                level = self.edge_level(edge)
                self._edges_by_level.setdefault(level.region_id, []).append(edge)
        return self._edges_by_level.get(region.region_id, [])

    def collapsed_cfg(self, region: SESERegion) -> Tuple[CFG, Dict[Edge, Edge]]:
        """``region`` as a standalone CFG with children collapsed.

        Returns ``(sub, edge_map)``:

        * nodes of ``sub``: the region's own nodes, one summary node
          ``("region", child_id)`` per immediate child, and -- for canonical
          regions -- synthetic :data:`REGION_ENTRY` / :data:`REGION_EXIT`
          standing for the entry and exit edges (the root region keeps the
          original ``start``/``end``);
        * ``edge_map`` maps each original edge at this region's level
          (including the region's own entry/exit) to its image in ``sub``.

        Results are cached per region (total work over all regions is O(E));
        callers must treat the returned graph as read-only.
        """
        cached = self._collapsed_cache.get(region.region_id)
        if cached is not None:
            return cached
        collapse_to: Dict[NodeId, NodeId] = {}
        for child in region.children:
            summary = self.child_summary_id(child)
            for node in child.nodes():
                collapse_to[node] = summary

        if region.is_root:
            sub = CFG(start=self.cfg.start, end=self.cfg.end, name=f"{self.cfg.name}.root")
        else:
            sub = CFG(start=REGION_ENTRY, end=REGION_EXIT, name=f"{self.cfg.name}.R{region.region_id}")
        for node in region.own_nodes:
            sub.add_node(node)
        for child in region.children:
            sub.add_node(self.child_summary_id(child))

        def image(node: NodeId) -> NodeId:
            return collapse_to.get(node, node)

        edge_map: Dict[Edge, Edge] = {}
        if not region.is_root:
            assert region.entry is not None and region.exit is not None
            edge_map[region.entry] = sub.add_edge(
                REGION_ENTRY, image(region.entry.target), region.entry.label
            )
        for edge in self.level_edges(region):
            if not region.is_root and (edge is region.entry or edge is region.exit):
                continue
            entry_child = self.entry_region.get(edge)
            exit_child = self.exit_region.get(edge)
            source = self.child_summary_id(exit_child) if exit_child else image(edge.source)
            target = self.child_summary_id(entry_child) if entry_child else image(edge.target)
            edge_map[edge] = sub.add_edge(source, target, edge.label)
        if not region.is_root:
            assert region.exit is not None
            exit_child = self.exit_region.get(region.exit)
            # region.exit's exit_region is `region` itself; its *source-side*
            # collapse is handled by image() unless it is also the exit of a
            # child -- impossible, since an edge exits at most one canonical
            # region.  So the source is simply the image of the real source.
            edge_map[region.exit] = sub.add_edge(
                image(region.exit.source), REGION_EXIT, region.exit.label
            )
        self._collapsed_cache[region.region_id] = (sub, edge_map)
        return sub, edge_map

    def __len__(self) -> int:
        """Number of canonical regions."""
        return len(self.canonical_regions())


def build_pst(
    cfg: CFG, equiv: Optional[CycleEquivalence] = None, ticker=None
) -> ProgramStructureTree:
    """Build the PST of ``cfg`` in O(E) time.

    Computes cycle equivalence (unless ``equiv`` is supplied), derives the
    canonical SESE regions, then assigns nesting and node containment with a
    single tree-walk of the CFG's DFS tree.  ``ticker`` (a
    :class:`~repro.resilience.guards.Ticker`) guards the cycle-equivalence
    phase, which dominates the running time.

    The region derivation and tree walk run on the CSR kernel
    (:func:`repro.kernel.pst.kernel_build_pst`);
    :func:`build_pst_reference` is the retained object-graph builder, with
    identical output.
    """
    o = _obs._CURRENT
    if o is None:
        return _build_pst(cfg, equiv, ticker)
    o.count("dispatch", component="build_pst", impl="kernel")
    with o.span("build_pst", impl="kernel", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges):
        return _build_pst(cfg, equiv, ticker)


def _build_pst(
    cfg: CFG, equiv: Optional[CycleEquivalence], ticker
) -> ProgramStructureTree:
    if equiv is None:
        equiv = cycle_equivalence_of_cfg(cfg, ticker=ticker)
    frozen = shared_frozen(cfg)
    classes = equiv.positional
    if classes is None or len(classes) != frozen.num_edges:
        class_of = equiv.class_of
        classes = [class_of[edge] for edge in cfg.edges]
    return kernel_build_pst(frozen, classes)


def build_pst_reference(
    cfg: CFG, equiv: Optional[CycleEquivalence] = None, ticker=None
) -> ProgramStructureTree:
    """Object-graph reference for :func:`build_pst` (same contract)."""
    o = _obs._CURRENT
    if o is None:
        return _build_pst_reference(cfg, equiv, ticker)
    o.count("dispatch", component="build_pst", impl="reference")
    with o.span(
        "build_pst", impl="reference", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return _build_pst_reference(cfg, equiv, ticker)


def _build_pst_reference(
    cfg: CFG, equiv: Optional[CycleEquivalence], ticker
) -> ProgramStructureTree:
    if equiv is None:
        equiv = cycle_equivalence_of_cfg(cfg, ticker=ticker)
    canonical = canonical_sese_regions(cfg, equiv)
    by_entry: Dict[Edge, SESERegion] = {r.entry: r for r in canonical}
    by_exit: Dict[Edge, SESERegion] = {r.exit: r for r in canonical}

    root = SESERegion(entry=None, exit=None, region_id=-1)
    root.own_nodes.append(cfg.start)
    stack: List[SESERegion] = [root]
    pushed_at: Dict[Edge, SESERegion] = {}
    popped_at: Dict[Edge, SESERegion] = {}

    for kind, payload in _tree_events(cfg):
        if kind == "down":
            edge = payload
            closing = by_exit.get(edge)
            if closing is not None:
                if stack[-1] is not closing:
                    raise AssertionError(
                        f"PST stack discipline violated closing {closing!r}; "
                        f"top is {stack[-1]!r}"
                    )
                stack.pop()
                popped_at[edge] = closing
            opening = by_entry.get(edge)
            if opening is not None:
                opening.parent = stack[-1]
                stack[-1].children.append(opening)
                stack.append(opening)
                pushed_at[edge] = opening
            stack[-1].own_nodes.append(edge.target)
        else:  # "up": backtracking over a tree edge undoes its events
            edge = payload
            opened = pushed_at.pop(edge, None)
            if opened is not None:
                if stack[-1] is not opened:
                    raise AssertionError("PST stack discipline violated on backtrack")
                stack.pop()
            closed = popped_at.pop(edge, None)
            if closed is not None:
                stack.append(closed)

    if len(stack) != 1 or stack[0] is not root:
        raise AssertionError("PST stack not fully unwound after DFS")

    for depth, region in _preorder_with_depth(root):
        region.depth = depth
    return ProgramStructureTree(cfg, root, canonical)


def _tree_events(cfg: CFG) -> Iterator[Tuple[str, Edge]]:
    """Yield ("down", edge) / ("up", edge) events for the CFG's DFS tree.

    The DFS uses the same adjacency order as
    :func:`repro.cfg.traversal.dfs_edges`, so region entry edges (which are
    tree edges, see module docstring) are encountered consistently.
    """
    seen = {cfg.start}
    stack: List[Tuple[NodeId, Iterator[Edge], Optional[Edge]]] = [
        (cfg.start, iter(cfg.iter_out_edges(cfg.start)), None)
    ]
    while stack:
        node, it, via = stack[-1]
        advanced = False
        for edge in it:
            if edge.target not in seen:
                seen.add(edge.target)
                yield ("down", edge)
                stack.append((edge.target, iter(cfg.iter_out_edges(edge.target)), edge))
                advanced = True
                break
        if not advanced:
            stack.pop()
            if via is not None:
                yield ("up", via)


def _preorder_with_depth(root: SESERegion) -> Iterator[Tuple[int, SESERegion]]:
    stack: List[Tuple[int, SESERegion]] = [(0, root)]
    while stack:
        depth, region = stack.pop()
        yield depth, region
        for child in reversed(region.children):
            stack.append((depth + 1, child))
