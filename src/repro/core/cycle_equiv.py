"""The linear-time cycle-equivalence algorithm (Figure 4 of the paper).

Two edges of a strongly connected graph are *cycle equivalent* iff every
cycle contains both or neither (Definition 4).  The algorithm chain is:

1. Theorem 2 reduces SESE-region discovery in a CFG ``G`` to cycle
   equivalence in ``S = G + (end -> start)``.
2. Theorem 3 shows cycle equivalence in a strongly connected ``S`` equals
   cycle equivalence in the *undirected multigraph* ``U`` obtained by
   dropping edge directions.
3. In ``U``, an undirected DFS classifies edges into tree edges and
   backedges; Theorems 4 and 5 characterize equivalence through *bracket
   sets*, and §3.4/§3.5 give the compact ``<topmost bracket, set size>``
   naming realized with the :class:`~repro.core.bracketlist.BracketList`
   ADT, yielding an O(E) algorithm.

Implementation notes beyond the paper's pseudocode:

* **Self-loops** are cycle equivalent only to themselves (the one-edge cycle
  contains nothing else).  They are excluded from the DFS and assigned
  singleton classes up front; they also never act as brackets.
* **Capping backedges to the current node**: the pseudocode creates a capping
  backedge whenever ``hi2 < hi0``.  When a node ``n`` has no backedge to an
  ancestor (``hi0 = infinity``) and its second-highest-reaching child subtree
  reaches exactly ``n`` (``hi2 == dfsnum(n)``), the literal rule would create
  a degenerate self-loop capping bracket that is never deleted.  Since a
  branch whose brackets all end at ``n`` leaves no brackets above ``n``,
  no cap is needed; we therefore additionally require ``hi2 < dfsnum(n)``.
  (The companion oracle tests in ``tests/core/test_cycle_equiv*.py`` validate
  this against brute-force cycle enumeration.)
* The DFS and the processing loop are iterative, so graphs with tens of
  thousands of nodes (the worst-case benchmarks) do not hit the recursion
  limit.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, InvalidCFGError, NodeId
from repro.cfg.validate import validate_cfg
from repro.core.bracketlist import Bracket, BracketList
from repro.kernel.cycle_equiv import kernel_cycle_equivalence
from repro.kernel.registry import shared_frozen
from repro.obs import observer as _obs
from repro.resilience.guards import Ticker

INFINITY = float("inf")

# Fault-injection hook (repro.resilience.faults installs/clears a plan here;
# see site "cycle-equiv/skip-cap").  Always None in production.
_FAULTS = None


class _UndirectedEdge:
    """An edge of the undirected multigraph U, wrapping a directed edge.

    After the DFS it is either a *tree edge* (``parent_of`` set to the deeper
    endpoint) or a *backedge* (``origin``/``dest`` set: origin is the
    descendant endpoint, dest the ancestor endpoint).
    """

    __slots__ = ("directed", "u", "v", "processed", "is_tree", "origin", "dest", "bracket", "class_id")

    def __init__(self, directed: Optional[Edge], u: Optional[NodeId] = None, v: Optional[NodeId] = None):
        self.directed = directed
        if directed is not None:
            u, v = directed.source, directed.target
        self.u: NodeId = u
        self.v: NodeId = v
        self.processed = False
        self.is_tree = False
        self.origin: Optional[NodeId] = None
        self.dest: Optional[NodeId] = None
        self.bracket: Optional[Bracket] = None
        self.class_id: Optional[int] = None

    def other(self, node: NodeId) -> NodeId:
        return self.v if node == self.u else self.u

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "tree" if self.is_tree else "back"
        return f"<uedge {self.u!r}--{self.v!r} {kind}>"


class CycleEquivalence:
    """Result of a cycle-equivalence computation over a directed graph.

    ``class_of`` maps every directed edge (including any augmentation edge)
    to an integer class id.  Edges with equal ids are cycle equivalent.

    ``positional`` optionally carries the same ids as a flat list indexed by
    edge *position* in the source graph's ``edges`` list (set when the
    result came from the CSR kernel); consumers that walk edges by index
    (e.g. :func:`repro.core.pst.build_pst`) use it to skip dict lookups.

    When constructed from the kernel, the ``class_of`` dict is materialized
    lazily from ``positional`` and the edge list on first access, so
    positional-only consumers never pay for it.
    """

    def __init__(
        self,
        class_of: Optional[Dict[Edge, int]],
        positional: Optional[List[int]] = None,
        lazy_edges: Optional[List[Edge]] = None,
    ):
        self._class_of = class_of
        self.positional = positional
        self._lazy_edges = lazy_edges

    @property
    def class_of(self) -> Dict[Edge, int]:
        mapping = self._class_of
        if mapping is None:
            assert self._lazy_edges is not None and self.positional is not None
            mapping = self._class_of = dict(zip(self._lazy_edges, self.positional))
        return mapping

    def classes(self) -> Dict[int, List[Edge]]:
        """Class id -> edges, each list in ascending edge-id order."""
        out: Dict[int, List[Edge]] = {}
        for edge, cls in self.class_of.items():
            out.setdefault(cls, []).append(edge)
        for edges in out.values():
            edges.sort()
        return out

    def equivalent(self, a: Edge, b: Edge) -> bool:
        """True iff ``a`` and ``b`` are cycle equivalent."""
        return self.class_of[a] == self.class_of[b]

    def __getitem__(self, edge: Edge) -> int:
        return self.class_of[edge]

    def __len__(self) -> int:
        return len(self.class_of)


def cycle_equivalence_scc(
    graph: CFG,
    root: Optional[NodeId] = None,
    virtual_edges: Tuple[Tuple[NodeId, NodeId], ...] = (),
    ticker: Optional[Ticker] = None,
) -> CycleEquivalence:
    """Edge cycle-equivalence classes of a strongly connected graph.

    ``graph`` must be strongly connected (equivalently for our purposes: its
    undirected form is connected and bridgeless); an
    :class:`~repro.cfg.graph.InvalidCFGError` is raised when the DFS
    discovers a violation.  ``root`` picks the DFS root (default: the first
    node).

    ``virtual_edges`` are extra ``(u, v)`` pairs treated as edges of the
    graph without materializing them (used for the ``end -> start``
    augmentation so callers need not copy the CFG); their classes are not
    reported in the result.

    ``ticker`` is an optional :class:`~repro.resilience.guards.Ticker`
    charged one step per node and per undirected edge ahead of the DFS, and
    one step per node ahead of the main loop -- both phases are O(V + E),
    so each is billed in one bulk ``tick`` at its boundary rather than
    paying a checkpoint per iteration on the hot path.
    """
    if graph.num_nodes == 0:
        return CycleEquivalence({})
    root = graph.nodes[0] if root is None else root
    tick = None if ticker is None else ticker.tick

    counter = _ClassCounter()
    class_of: Dict[Edge, int] = {}

    # ------------------------------------------------------------------
    # Build the undirected multigraph.  Self-loops are singleton classes.
    # ------------------------------------------------------------------
    uedges: List[_UndirectedEdge] = []
    adjacency: Dict[NodeId, List[_UndirectedEdge]] = {node: [] for node in graph.nodes}
    for edge in graph.edges:
        if edge.is_self_loop:
            class_of[edge] = counter.next()
            continue
        ue = _UndirectedEdge(edge)
        uedges.append(ue)
        adjacency[ue.u].append(ue)
        adjacency[ue.v].append(ue)
    for u, v in virtual_edges:
        if u == v:
            continue  # a virtual self-loop cannot affect any class
        ue = _UndirectedEdge(None, u, v)
        adjacency[u].append(ue)
        adjacency[v].append(ue)

    # ------------------------------------------------------------------
    # Undirected DFS: numbering, tree edges, backedge orientation.  All
    # per-node state is kept in arrays indexed by DFS number -- node ids are
    # only hashed once, at discovery.
    # ------------------------------------------------------------------
    capacity = graph.num_nodes
    dfsnum: Dict[NodeId, int] = {root: 0}
    node_at: List[NodeId] = [root]
    parent_edge: List[Optional[_UndirectedEdge]] = [None] * capacity
    children: List[List[Tuple[int, _UndirectedEdge]]] = [[] for _ in range(capacity)]
    up_backedges: List[List[_UndirectedEdge]] = [[] for _ in range(capacity)]
    down_backedges: List[List[_UndirectedEdge]] = [[] for _ in range(capacity)]

    if tick is not None:
        tick(capacity + len(uedges))  # the DFS about to run is O(V + E)
    o = _obs._CURRENT
    dfs_span = o.span("cycle_equiv.dfs") if o is not None else None
    stack: List[Tuple[NodeId, int, Iterator[_UndirectedEdge]]] = [
        (root, 0, iter(adjacency[root]))
    ]
    while stack:
        node, num, it = stack[-1]
        advanced = False
        for ue in it:
            if ue.processed:
                continue
            ue.processed = True
            other = ue.other(node)
            other_num = dfsnum.get(other)
            if other_num is None:
                ue.is_tree = True
                other_num = len(node_at)
                dfsnum[other] = other_num
                node_at.append(other)
                parent_edge[other_num] = ue
                children[num].append((other_num, ue))
                stack.append((other, other_num, iter(adjacency[other])))
                advanced = True
                break
            # Non-tree edge: in an undirected DFS it must connect `node` to a
            # proper ancestor (cross edges cannot exist).
            if other_num >= num:
                raise AssertionError(
                    "undirected DFS produced a non-ancestor non-tree edge; "
                    "this indicates corrupted adjacency state"
                )
            ue.origin, ue.dest = num, other_num
            ue.bracket = Bracket(payload=ue)
            up_backedges[num].append(ue)
            down_backedges[other_num].append(ue)
        if not advanced:
            stack.pop()
    if dfs_span is not None:
        dfs_span.finish()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("dfs")

    if len(dfsnum) != graph.num_nodes:
        missing = [n for n in graph.nodes if n not in dfsnum][:5]
        raise InvalidCFGError(
            f"graph is not connected: nodes {missing!r} unreachable from {root!r} "
            "in the undirected multigraph (cycle equivalence requires a "
            "strongly connected input)"
        )

    # ------------------------------------------------------------------
    # Figure 4 main loop: reverse depth-first (descending dfsnum) order.
    # ------------------------------------------------------------------
    hi: List[float] = [INFINITY] * capacity
    blist_of: List[Optional[BracketList]] = [None] * capacity
    capping_at: List[List[Bracket]] = [[] for _ in range(capacity)]

    if tick is not None:
        tick(len(node_at))  # the reverse depth-first sweep about to run
    bracket_span = o.span("cycle_equiv.brackets") if o is not None else None
    for num in range(len(node_at) - 1, -1, -1):
        node = node_at[num]

        # hi0: highest (smallest dfsnum) destination of a backedge from node.
        hi0: float = INFINITY
        for ue in up_backedges[num]:
            if ue.dest < hi0:
                hi0 = ue.dest
        # hi1: highest reach among children; hi2: second-highest.
        hi1: float = INFINITY
        hi2: float = INFINITY
        for child_num, _ in children[num]:
            child_hi = hi[child_num]
            if child_hi < hi1:
                hi2 = hi1
                hi1 = child_hi
            elif child_hi < hi2:
                hi2 = child_hi
        hi[num] = hi0 if hi0 < hi1 else hi1

        # Merge children's bracket lists (arbitrary order is fine, §3.4).
        blist = BracketList()
        for child_num, _ in children[num]:
            blist.concat(blist_of[child_num])
            blist_of[child_num] = None

        # Delete capping backedges ending here.
        for cap in capping_at[num]:
            blist.delete(cap)
        # Delete real backedges ending here; orphaned ones get fresh classes.
        for ue in down_backedges[num]:
            bracket = ue.bracket
            blist.delete(bracket)
            if bracket.class_id is None:
                bracket.class_id = counter.next()
            ue.class_id = bracket.class_id
        # Push backedges originating here.
        for ue in up_backedges[num]:
            blist.push(ue.bracket)
        # Capping backedge: needed iff a *second* child subtree reaches a
        # proper ancestor of node, higher than node's own backedges reach.
        if hi2 < hi0 and hi2 < num:
            if _FAULTS is not None and _FAULTS.should_fire("cycle-equiv/skip-cap"):
                pass  # injected fault: silently skip the capping bracket
            else:
                dest_num = int(hi2)
                cap = Bracket(payload=(node, node_at[dest_num]), is_capping=True)
                capping_at[dest_num].append(cap)
                blist.push(cap)

        blist_of[num] = blist

        # Name the equivalence class of the tree edge into node.
        if num != 0:
            tree_edge = parent_edge[num]
            if blist.size == 0:
                raise InvalidCFGError(
                    f"tree edge into {node!r} has no brackets: the undirected "
                    "multigraph has a bridge, so the input is not strongly "
                    "connected"
                )
            b = blist.top()
            if b.recent_size != blist.size:
                b.recent_size = blist.size
                b.recent_class = counter.next()
            tree_edge.class_id = b.recent_class
            # Theorem 4: a backedge that is the *only* bracket of a tree edge
            # is cycle equivalent to it.
            if b.recent_size == 1 and not b.is_capping:
                b.class_id = tree_edge.class_id

    if bracket_span is not None:
        bracket_span.finish()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("brackets")

    naming_span = o.span("cycle_equiv.naming") if o is not None else None
    for ue in uedges:
        assert ue.class_id is not None, f"unlabelled edge {ue!r}"
        class_of[ue.directed] = ue.class_id
    if naming_span is not None:
        naming_span.finish()
    if ticker is not None and ticker.profile is not None:
        ticker.mark("naming")
    return CycleEquivalence(class_of)


def cycle_equivalence(
    cfg: CFG, validate: bool = True, ticker: Optional[Ticker] = None
) -> Tuple[CycleEquivalence, Edge]:
    """Cycle equivalence on ``S = cfg + (end -> start)`` (Theorem 2 setup).

    Returns ``(equiv, return_edge)``.  ``equiv.class_of`` covers all edges of
    the augmented graph; ``return_edge`` is the added ``end -> start`` edge
    (callers usually want to ignore its class when forming SESE regions).
    Edges of the augmented copy correspond positionally to ``cfg.edges``; use
    :func:`cycle_equivalence_of_cfg` to get classes keyed by the original
    edges directly.
    """
    if validate:
        validate_cfg(cfg)
    augmented, return_edge = cfg.with_return_edge()
    equiv = cycle_equivalence_scc(augmented, root=cfg.start, ticker=ticker)
    return equiv, return_edge


def cycle_equivalence_of_cfg(
    cfg: CFG, validate: bool = True, ticker: Optional[Ticker] = None
) -> CycleEquivalence:
    """Cycle-equivalence classes keyed by the edges of ``cfg`` itself.

    The ``end -> start`` augmentation is applied virtually (no graph copy);
    its class is not reported.  Runs the array kernel
    (:func:`repro.kernel.cycle_equiv.kernel_cycle_equivalence`) over the
    shared frozen snapshot; class ids are identical to the object-graph
    reference (:func:`cycle_equivalence_of_cfg_reference`) because both
    follow the same DFS and the same new-class order.
    """
    o = _obs._CURRENT
    if o is None:
        return _cycle_equivalence_of_cfg(cfg, validate, ticker)
    o.count("dispatch", component="cycle_equiv", impl="kernel")
    with o.span("cycle_equiv", impl="kernel", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges):
        return _cycle_equivalence_of_cfg(cfg, validate, ticker)


def _cycle_equivalence_of_cfg(
    cfg: CFG, validate: bool, ticker: Optional[Ticker]
) -> CycleEquivalence:
    frozen = shared_frozen(cfg)
    if validate and not frozen.validated:
        validate_cfg(cfg)
        frozen.validated = True
    if cfg.start is None or cfg.end is None:
        raise InvalidCFGError("CFG must have start and end nodes set")
    classes = kernel_cycle_equivalence(
        frozen,
        root=frozen.start,
        virtual_edges=((frozen.end, frozen.start),),
        ticker=ticker,
    )
    return CycleEquivalence(None, positional=classes, lazy_edges=cfg.edges)


def cycle_equivalence_of_cfg_reference(
    cfg: CFG, validate: bool = True, ticker: Optional[Ticker] = None
) -> CycleEquivalence:
    """Object-graph reference for :func:`cycle_equivalence_of_cfg`.

    Same contract, computed by :func:`cycle_equivalence_scc` directly over
    the object multigraph.  Kept as the oracle the fuzz campaign and the
    kernel unit tests compare the CSR kernel against.
    """
    if validate:
        validate_cfg(cfg)
    if cfg.start is None or cfg.end is None:
        raise InvalidCFGError("CFG must have start and end nodes set")
    o = _obs._CURRENT
    if o is None:
        return cycle_equivalence_scc(
            cfg, root=cfg.start, virtual_edges=((cfg.end, cfg.start),), ticker=ticker
        )
    o.count("dispatch", component="cycle_equiv", impl="reference")
    with o.span(
        "cycle_equiv", impl="reference", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return cycle_equivalence_scc(
            cfg, root=cfg.start, virtual_edges=((cfg.end, cfg.start),), ticker=ticker
        )


class _ClassCounter:
    """The ``new-class()`` procedure: fresh integers from zero."""

    __slots__ = ("_next",)

    def __init__(self) -> None:
        self._next = 0

    def next(self) -> int:
        value = self._next
        self._next += 1
        return value
