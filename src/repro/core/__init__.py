"""The paper's primary contribution: cycle equivalence, SESE regions, PST.

* :mod:`repro.core.bracketlist` -- the BracketList ADT of §3.5 (O(1) push,
  top, delete, concat, size).
* :mod:`repro.core.cycle_equiv` -- the linear-time cycle-equivalence
  algorithm (Figure 4), plus the directed->undirected reduction (Theorem 3)
  and the SESE reduction (Theorem 2).
* :mod:`repro.core.cycle_equiv_slow` -- two independent oracles: brute-force
  simple-cycle enumeration and the §3.3 bracket-set algorithm.
* :mod:`repro.core.sese` -- canonical SESE regions from equivalence classes.
* :mod:`repro.core.pst` -- the Program Structure Tree.
* :mod:`repro.core.region_kinds` -- the Figure 7 structural classifier.
"""

from repro.core.bracketlist import Bracket, BracketList
from repro.core.cycle_equiv import CycleEquivalence, cycle_equivalence, cycle_equivalence_scc
from repro.core.sese import SESERegion, canonical_sese_regions
from repro.core.pst import ProgramStructureTree, build_pst
from repro.core.region_kinds import RegionKind, classify_region, classify_pst

__all__ = [
    "Bracket",
    "BracketList",
    "CycleEquivalence",
    "cycle_equivalence",
    "cycle_equivalence_scc",
    "SESERegion",
    "canonical_sese_regions",
    "ProgramStructureTree",
    "build_pst",
    "RegionKind",
    "classify_region",
    "classify_pst",
]
