"""The structured exception taxonomy of the library.

Every error the library raises deliberately derives from :class:`ReproError`
so callers (the CLI, the resilience engine, the batch runner) can distinguish
*our* diagnoses from genuine crashes with a single ``except`` clause::

    ReproError
    ├── InvalidCFGError        (repro.cfg.graph; also a ValueError)
    │       the input violates the CFG invariants of Definition 1
    ├── ResourceExhausted      a cooperative guard checkpoint tripped
    │   ├── DeadlineExceeded   wall-clock deadline passed
    │   └── BudgetExceeded     step budget consumed
    ├── PostconditionError     a fast-path result failed a validity check
    └── AnalysisError          an analysis failed or diverged from its
                               reference (fallback ladder exhausted)

:class:`InvalidCFGError` keeps its historical ``ValueError`` base (and its
home in :mod:`repro.cfg.graph`) so existing ``except ValueError`` call sites
keep working; it is re-exported here for completeness.

The guard exceptions carry structured context (``steps``, ``elapsed``,
``limit``) so diagnostics can report *how far* an analysis got before the
checkpoint fired; see :mod:`repro.resilience.guards`.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Root of the library's exception taxonomy."""


class ResourceExhausted(ReproError):
    """A cooperative guard checkpoint tripped (see resilience.guards).

    ``steps`` is the number of checkpoint ticks consumed, ``elapsed`` the
    wall-clock seconds since the guard was armed, ``limit`` the configured
    bound that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        steps: Optional[int] = None,
        elapsed: Optional[float] = None,
        limit: Optional[float] = None,
    ):
        super().__init__(message)
        self.steps = steps
        self.elapsed = elapsed
        self.limit = limit


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed before the analysis finished."""


class BudgetExceeded(ResourceExhausted):
    """The step budget was consumed before the analysis finished."""


class PostconditionError(ReproError):
    """A fast-path result failed one of the engine's validity checks.

    Raised (and caught) inside :mod:`repro.resilience.engine`; reaching a
    caller means the slow reference fallback failed the same check, which
    indicates a malformed input or a genuine bug.
    """


class AnalysisError(ReproError):
    """An analysis failed outright or diverged from its reference."""


# ----------------------------------------------------------------------
# process exit codes (shared by the CLI and the benchmark harness)
# ----------------------------------------------------------------------

#: Everything succeeded.
EXIT_OK = 0
#: The run completed but produced diagnostics (fuzz divergence, failed items).
EXIT_DIAGNOSTICS = 1
#: Bad usage or an IO problem (unreadable source, malformed arguments).
EXIT_USAGE_IO = 2
#: A declared budget was exceeded: the input violates the Definition-1 CFG
#: invariants, or a measured benchmark ratio broke its regression budget.
EXIT_BUDGET_EXCEEDED = 3
#: An analysis failed outright (fallback ladder exhausted, engine error).
EXIT_ANALYSIS_FAILED = 4
