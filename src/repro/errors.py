"""The structured exception taxonomy of the library.

Every error the library raises deliberately derives from :class:`ReproError`
so callers (the CLI, the resilience engine, the batch runner) can distinguish
*our* diagnoses from genuine crashes with a single ``except`` clause::

    ReproError
    ├── InvalidCFGError        (repro.cfg.graph; also a ValueError)
    │       the input violates the CFG invariants of Definition 1
    ├── ResourceExhausted      a cooperative guard checkpoint tripped
    │   ├── DeadlineExceeded   wall-clock deadline passed
    │   └── BudgetExceeded     step budget consumed
    ├── PostconditionError     a fast-path result failed a validity check
    ├── AnalysisError          an analysis failed or diverged from its
    │                          reference (fallback ladder exhausted)
    ├── CheckpointError        a batch checkpoint file cannot be used
    │                          (e.g. written by a newer format version)
    └── ServiceUnavailable     the analysis service refused the request
        ├── ServiceShed        admission control shed it (rate / queue depth)
        └── ServiceDraining    the server is draining after SIGTERM

Every concrete class maps to a *documented* process exit code through
:func:`exit_code_for` -- the single source of truth the CLI consults, with
a test walking ``ReproError``'s subclass tree so a newly added diagnostic
can never silently fall through to the generic exit 1.

:class:`InvalidCFGError` keeps its historical ``ValueError`` base (and its
home in :mod:`repro.cfg.graph`) so existing ``except ValueError`` call sites
keep working; it is re-exported here for completeness.

The guard exceptions carry structured context (``steps``, ``elapsed``,
``limit``) so diagnostics can report *how far* an analysis got before the
checkpoint fired; see :mod:`repro.resilience.guards`.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Root of the library's exception taxonomy."""


class ResourceExhausted(ReproError):
    """A cooperative guard checkpoint tripped (see resilience.guards).

    ``steps`` is the number of checkpoint ticks consumed, ``elapsed`` the
    wall-clock seconds since the guard was armed, ``limit`` the configured
    bound that was exceeded.
    """

    def __init__(
        self,
        message: str,
        *,
        steps: Optional[int] = None,
        elapsed: Optional[float] = None,
        limit: Optional[float] = None,
    ):
        super().__init__(message)
        self.steps = steps
        self.elapsed = elapsed
        self.limit = limit


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed before the analysis finished."""


class BudgetExceeded(ResourceExhausted):
    """The step budget was consumed before the analysis finished."""


class PostconditionError(ReproError):
    """A fast-path result failed one of the engine's validity checks.

    Raised (and caught) inside :mod:`repro.resilience.engine`; reaching a
    caller means the slow reference fallback failed the same check, which
    indicates a malformed input or a genuine bug.
    """


class AnalysisError(ReproError):
    """An analysis failed outright or diverged from its reference."""


class CheckpointError(ReproError):
    """A batch checkpoint file cannot be used as-is.

    Raised when a checkpoint declares a format ``version`` newer than this
    library understands: resuming would risk silently double-running (or
    skipping) items, so the run refuses with a structured diagnostic
    instead.  ``version`` carries the offending number when known.
    """

    def __init__(self, message: str, *, version: Optional[int] = None):
        super().__init__(message)
        self.version = version


class ServiceUnavailable(ReproError):
    """The analysis service refused a request (admission or lifecycle).

    ``retry_after`` is the server's hint, in seconds, for when a retry is
    worth attempting (``None`` when there is no meaningful estimate).
    """

    #: HTTP status the service maps this refusal to.
    http_status = 503

    def __init__(self, message: str, *, retry_after: Optional[float] = None):
        super().__init__(message)
        self.retry_after = retry_after


class ServiceShed(ServiceUnavailable):
    """Admission control shed the request (token bucket or queue depth).

    ``reason`` distinguishes ``"rate"`` (token bucket empty -- HTTP 429)
    from ``"depth"`` (too many requests in flight -- HTTP 503).
    """

    def __init__(
        self,
        message: str,
        *,
        reason: str = "rate",
        retry_after: Optional[float] = None,
    ):
        super().__init__(message, retry_after=retry_after)
        self.reason = reason

    @property
    def http_status(self) -> int:  # type: ignore[override]
        return 429 if self.reason == "rate" else 503


class ServiceDraining(ServiceUnavailable):
    """The server received SIGTERM and is finishing in-flight work only."""


# ----------------------------------------------------------------------
# process exit codes (shared by the CLI and the benchmark harness)
# ----------------------------------------------------------------------

#: Everything succeeded.
EXIT_OK = 0
#: The run completed but produced diagnostics (fuzz divergence, failed items).
EXIT_DIAGNOSTICS = 1
#: Bad usage or an IO problem (unreadable source, malformed arguments).
EXIT_USAGE_IO = 2
#: A declared budget was exceeded: the input violates the Definition-1 CFG
#: invariants, or a measured benchmark ratio broke its regression budget.
EXIT_BUDGET_EXCEEDED = 3
#: An analysis failed outright (fallback ladder exhausted, engine error).
EXIT_ANALYSIS_FAILED = 4
#: The analysis service shed the request (admission control: rate or
#: queue depth).  Retryable -- the service said "not now", not "never".
EXIT_SHED = 5
#: The analysis service is draining (SIGTERM received): it finishes
#: in-flight work but refuses new requests.  Retry against another replica.
EXIT_DRAINING = 6

#: Every exit code a repro process documents.  ``repro serve``/``repro
#: soak`` map refusals onto 5/6 so scripted clients can branch without
#: parsing messages.
DOCUMENTED_EXIT_CODES = (
    EXIT_OK,
    EXIT_DIAGNOSTICS,
    EXIT_USAGE_IO,
    EXIT_BUDGET_EXCEEDED,
    EXIT_ANALYSIS_FAILED,
    EXIT_SHED,
    EXIT_DRAINING,
)

#: Explicit error-class -> exit-code registry.  :func:`exit_code_for`
#: resolves through the MRO, so registering a base class covers its
#: subclasses -- but the root ``ReproError`` itself is deliberately absent:
#: a diagnostic class reachable only through the root is a taxonomy bug
#: (it would silently exit 1), and ``tests/test_exit_codes.py`` walks the
#: subclass tree to keep that invariant.
EXIT_CODE_BY_ERROR = {
    ResourceExhausted: EXIT_ANALYSIS_FAILED,
    PostconditionError: EXIT_ANALYSIS_FAILED,
    AnalysisError: EXIT_ANALYSIS_FAILED,
    CheckpointError: EXIT_USAGE_IO,
    ServiceShed: EXIT_SHED,
    ServiceDraining: EXIT_DRAINING,
    ServiceUnavailable: EXIT_SHED,
}


def _register_invalid_cfg() -> None:
    # InvalidCFGError lives in repro.cfg.graph (it must keep its ValueError
    # base there); registering lazily avoids a module cycle at import time.
    from repro.cfg.graph import InvalidCFGError

    EXIT_CODE_BY_ERROR.setdefault(InvalidCFGError, EXIT_BUDGET_EXCEEDED)


def exit_code_for(error) -> int:
    """The documented exit code for a :class:`ReproError` (class or instance).

    Resolution walks the exception's MRO and returns the code of the
    nearest registered ancestor.  An unregistered diagnostic falls back to
    :data:`EXIT_DIAGNOSTICS` -- the historical behaviour -- but the exit-code
    test treats that fallback as a failure, so the gap is closed at
    development time rather than in production.
    """
    _register_invalid_cfg()
    cls = error if isinstance(error, type) else type(error)
    for base in cls.__mro__:
        code = EXIT_CODE_BY_ERROR.get(base)
        if code is not None:
            return code
    return EXIT_DIAGNOSTICS
