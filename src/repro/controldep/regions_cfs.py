"""The Cytron-Ferrante-Sarkar O(EN) control-region baseline ([CFS90]).

CFS90 computes control-dependence equivalence classes by *partition
refinement*: all nodes start in one class, and for every control dependence
``(c, l)`` the partition is split by the set of nodes dependent on ``(c, l)``.
Worst case O(N) work per control dependence and O(E) dependences gives
O(EN); the paper's contribution is replacing this with the O(E)
cycle-equivalence reduction.

This baseline exists for two purposes: as a third independent
implementation of the same partition (cross-checked in the test suite) and
as the comparison point of ``benchmarks/bench_perf_control_regions.py``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cfg.graph import CFG, NodeId
from repro.cfg.validate import validate_cfg
from repro.controldep.fow import dependents_of_edge, dependents_of_return_edge
from repro.dominance.tree import postdominator_tree


def control_regions_cfs(cfg: CFG) -> List[List[NodeId]]:
    """Control regions by partition refinement (CFS90 style).

    Like the other algorithms, this works on the augmented graph: the
    ``end -> start`` edge's dependence set (the always-executed nodes)
    participates in the refinement.  Degenerate graphs raise
    :class:`~repro.cfg.graph.InvalidCFGError`, matching the other two
    control-region implementations.
    """
    validate_cfg(cfg)
    pdtree = postdominator_tree(cfg)

    # partition: class id per node, classes as node lists
    class_of: Dict[NodeId, int] = {node: 0 for node in cfg.nodes}
    members: Dict[int, List[NodeId]] = {0: list(cfg.nodes)}
    next_class = 1

    dependence_sets = [set(dependents_of_edge(cfg, pdtree, edge)) for edge in cfg.edges]
    dependence_sets.append(set(dependents_of_return_edge(cfg, pdtree)))
    for dependents in dependence_sets:
        if not dependents:
            continue
        # Split every class into (inside, outside) w.r.t. this dependence.
        touched: Dict[int, List[NodeId]] = {}
        for node in dependents:
            touched.setdefault(class_of[node], []).append(node)
        for cls, inside in touched.items():
            if len(inside) == len(members[cls]):
                continue  # class entirely inside; no split
            # Move the inside nodes to a fresh class.
            inside_set = set(inside)
            members[cls] = [n for n in members[cls] if n not in inside_set]
            members[next_class] = inside
            for node in inside:
                class_of[node] = next_class
            next_class += 1

    regions = [sorted(nodes, key=repr) for nodes in members.values() if nodes]
    regions.sort(key=repr)
    return regions
