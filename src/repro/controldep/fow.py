"""Ferrante-Ottenstein-Warren control dependence (Definition 8).

A node ``n`` is control dependent on node ``c`` with direction ``l`` (an
out-edge of ``c``) iff there is a path from ``c`` through ``l`` to ``n`` on
which ``n`` postdominates every node after ``c``, and ``n`` does not strictly
postdominate ``c``.  Equivalently (the standard postdominator-tree
formulation): for each CFG edge ``l = (c, m)``, the nodes control dependent
on ``(c, l)`` are exactly those on the postdominator-tree path from ``m`` up
to, but excluding, ``ipostdom(c)``.

This module is the *oracle* side of Theorem 7: grouping nodes by equal
control-dependence sets must coincide with node cycle equivalence in
``S = G + (end -> start)``.

**The augmentation edge matters.**  FOW87 compute control dependence on a
graph augmented with a special ENTRY -> EXIT edge so that always-executed
nodes are explicitly control dependent on the augmentation; the paper's
``end -> start`` edge plays exactly that role.  Without it, a node that
executes unconditionally *and* sits inside a loop (e.g. the body of a
repeat-until) would share its CD set with conditionally-executed latch
blocks, and Theorem 7 would fail: the big ``start..end`` cycles of ``S``
distinguish the two, and so does the dependence on the augmentation edge.
Dominance and postdominance themselves are unchanged by the added edge, so
the walks below run on the plain postdominator tree, with the augmentation
edge handled as one extra walk from ``start`` to the tree root.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple, Union

from repro.cfg.graph import CFG, Edge, NodeId
from repro.cfg.validate import validate_cfg
from repro.dominance.tree import DominatorTree, postdominator_tree

#: Sentinel standing for the ``end -> start`` augmentation edge in CD sets.
RETURN_EDGE = "$end->start$"


def control_dependence(cfg: CFG) -> Dict[NodeId, Set[Tuple[NodeId, object]]]:
    """CD sets on the augmented graph: node -> {(controlling node, edge)}.

    The augmentation edge appears as ``(end, RETURN_EDGE)``; its dependents
    are exactly the always-executed nodes (those postdominating ``start``).

    Raises :class:`~repro.cfg.graph.InvalidCFGError` on a degenerate graph
    (the postdominator-tree walks need every node to reach ``end``).
    """
    validate_cfg(cfg)
    pdtree = postdominator_tree(cfg)
    cd: Dict[NodeId, Set[Tuple[NodeId, object]]] = {node: set() for node in cfg.nodes}
    for edge in cfg.edges:
        for node in dependents_of_edge(cfg, pdtree, edge):
            cd[node].add((edge.source, edge))
    for node in dependents_of_return_edge(cfg, pdtree):
        cd[node].add((cfg.end, RETURN_EDGE))
    return cd


def dependents_of_return_edge(cfg: CFG, pdtree: DominatorTree) -> List[NodeId]:
    """Nodes control dependent on the ``end -> start`` augmentation edge.

    The walk from ``start`` to the postdominator-tree root (``ipostdom`` of
    the edge's source ``end`` is nothing, so the walk covers the whole
    chain): precisely the nodes that postdominate ``start``.
    """
    out: List[NodeId] = []
    runner: Union[NodeId, None] = cfg.start
    while runner is not None:
        out.append(runner)
        runner = pdtree.parent(runner)
    return out


def dependents_of_edge(cfg: CFG, pdtree: DominatorTree, edge: Edge) -> List[NodeId]:
    """Nodes control dependent on ``edge`` (postdominator-tree walk)."""
    c, m = edge.source, edge.target
    stop = pdtree.parent(c)  # ipostdom(c); None when c is the end node
    out: List[NodeId] = []
    runner = m
    while runner is not None and runner != stop:
        out.append(runner)
        runner = pdtree.parent(runner)
    return out


def control_regions_by_definition(cfg: CFG) -> List[List[NodeId]]:
    """Control regions: nodes grouped by *equal* control-dependence sets.

    This is the problem statement executed literally (FOW87-style); it is
    used to validate the linear-time algorithm of
    :mod:`repro.controldep.regions_fast`.  Regions are returned sorted for
    deterministic comparison.
    """
    cd = control_dependence(cfg)
    buckets: Dict[FrozenSet, List[NodeId]] = {}
    for node, deps in cd.items():
        key = frozenset(
            (c, e.eid if isinstance(e, Edge) else e) for c, e in deps
        )
        buckets.setdefault(key, []).append(node)
    regions = [sorted(nodes, key=repr) for nodes in buckets.values()]
    regions.sort(key=repr)
    return regions
