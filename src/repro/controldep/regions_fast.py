"""Control regions in O(E) time (§5, Theorems 7 & 8).

Theorem 7: nodes ``a`` and ``b`` of a CFG have the same control-dependence
set iff they are *node cycle equivalent* in ``S = G + (end -> start)``.

Theorem 8: node cycle equivalence in a strongly connected graph reduces to
*edge* cycle equivalence of representative edges in the node-expanded graph
``T(S)``, where every node ``n`` becomes ``n_i -> n_o`` and every edge
``n -> m`` becomes ``n_o -> m_i``.

Composing the two with the Figure 4 algorithm yields control regions in
linear time -- previous algorithms were O(EN) (CFS90) or restricted to
reducible graphs (Ball).  The paper notes an implementation that avoids
materializing ``T(S)``; we build it explicitly for clarity (it is linear in
size: ``2N`` nodes and ``N + E`` edges), and the benchmark suite shows the
end-to-end computation still undercuts dominator computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cfg.graph import CFG, Edge, InvalidCFGError, NodeId
from repro.cfg.validate import validate_cfg
from repro.core.cycle_equiv import cycle_equivalence_scc
from repro.kernel.cycle_equiv import kernel_control_region_classes
from repro.kernel.registry import shared_frozen
from repro.obs import observer as _obs
from repro.resilience.guards import Ticker


def node_expand(graph: CFG) -> Tuple[CFG, Dict[NodeId, Edge]]:
    """The node-expansion transformation T (Definition 9).

    Returns ``(expanded, representative)`` where ``representative[n]`` is the
    edge ``n_i -> n_o`` standing for node ``n``.
    """
    expanded = CFG(name=f"{graph.name}.T")
    representative: Dict[NodeId, Edge] = {}
    for node in graph.nodes:
        representative[node] = expanded.add_edge(("i", node), ("o", node))
    for edge in graph.edges:
        expanded.add_edge(("o", edge.source), ("i", edge.target), edge.label)
    return expanded, representative


def node_cycle_equivalence(graph: CFG, root: Optional[NodeId] = None) -> Dict[NodeId, int]:
    """Node cycle-equivalence classes of a strongly connected graph.

    Implemented per Theorem 8: edge cycle equivalence of representative
    edges in the node-expanded graph.
    """
    expanded, representative = node_expand(graph)
    root = graph.nodes[0] if root is None else root
    equiv = cycle_equivalence_scc(expanded, root=("i", root))
    return {node: equiv.class_of[rep] for node, rep in representative.items()}


def control_regions(
    cfg: CFG, validate: bool = True, ticker: Optional[Ticker] = None
) -> List[List[NodeId]]:
    """Control regions of ``cfg`` in O(E) time (the paper's algorithm).

    Nodes in the same returned group have identical control-dependence sets.
    Groups and their members are sorted for deterministic comparison with
    :func:`repro.controldep.fow.control_regions_by_definition`.

    Runs the array kernel
    (:func:`repro.kernel.cycle_equiv.kernel_control_region_classes`), which
    builds the node expansion directly in CSR form -- the implementation the
    paper alludes to that never materializes ``T(S)`` as a graph.
    :func:`control_regions_reference` is the retained object-graph path.
    """
    o = _obs._CURRENT
    if o is None:
        return _control_regions(cfg, validate, ticker)
    o.count("dispatch", component="control_regions", impl="kernel")
    with o.span(
        "control_regions", impl="kernel", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return _control_regions(cfg, validate, ticker)


def _control_regions(
    cfg: CFG, validate: bool, ticker: Optional[Ticker]
) -> List[List[NodeId]]:
    frozen = shared_frozen(cfg)
    if validate and not frozen.validated:
        validate_cfg(cfg)
        frozen.validated = True
    if cfg.start is None or cfg.end is None:
        raise InvalidCFGError("CFG must have start and end nodes set")
    classes = kernel_control_region_classes(frozen, ticker=ticker)
    buckets: Dict[int, List[NodeId]] = {}
    node_ids = frozen.node_ids
    for i, cls in enumerate(classes):
        buckets.setdefault(cls, []).append(node_ids[i])
    regions = [sorted(nodes, key=repr) for nodes in buckets.values()]
    regions.sort(key=repr)
    return regions


def control_regions_reference(cfg: CFG, validate: bool = True) -> List[List[NodeId]]:
    """Object-graph reference for :func:`control_regions` (same contract).

    Materializes the augmented graph and its node expansion ``T(S)``
    explicitly; kept as the oracle the kernel path is fuzzed against.
    """
    o = _obs._CURRENT
    if o is None:
        return _control_regions_reference(cfg, validate)
    o.count("dispatch", component="control_regions", impl="reference")
    with o.span(
        "control_regions", impl="reference", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return _control_regions_reference(cfg, validate)


def _control_regions_reference(cfg: CFG, validate: bool) -> List[List[NodeId]]:
    if validate:
        validate_cfg(cfg)
    augmented, _ = cfg.with_return_edge()
    classes = node_cycle_equivalence(augmented, root=cfg.start)
    buckets: Dict[int, List[NodeId]] = {}
    for node, cls in classes.items():
        buckets.setdefault(cls, []).append(node)
    regions = [sorted(nodes, key=repr) for nodes in buckets.values()]
    regions.sort(key=repr)
    return regions
