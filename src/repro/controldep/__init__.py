"""Control dependence and control regions (§5 of the paper).

* :mod:`repro.controldep.fow` -- Ferrante-Ottenstein-Warren control
  dependence (Definition 8), computed through the postdominator tree; the
  definitional oracle.
* :mod:`repro.controldep.regions_fast` -- the paper's O(E) control-region
  algorithm: node cycle equivalence in ``G + (end -> start)`` via the
  node-expansion transformation (Theorems 7 & 8).
* :mod:`repro.controldep.regions_cfs` -- the Cytron-Ferrante-Sarkar O(EN)
  partition-refinement baseline the paper improves upon.
"""

from repro.controldep.fow import control_dependence, control_regions_by_definition
from repro.controldep.regions_fast import control_regions, node_cycle_equivalence
from repro.controldep.regions_cfs import control_regions_cfs
from repro.controldep.cdg import ControlDependenceGraph

__all__ = [
    "control_dependence",
    "control_regions_by_definition",
    "control_regions",
    "node_cycle_equivalence",
    "control_regions_cfs",
    "ControlDependenceGraph",
]
