"""A factored control-dependence representation (footnote 7 of the paper).

    "The PST [can be] used to give a linear time and space factorization
    of control dependence that usually returns control dependence sets in
    time proportional to their size."

Nodes with identical control-dependence sets form a *control region* (§5);
storing one dependence set per region instead of per node is the
factorization.  Queries then cost O(1) for the region lookup plus time
proportional to the answer's size.  (The paper notes that a factorization
with *guaranteed* proportional-time answers was still open; this class
implements the practical variant it describes.)
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.cfg.graph import CFG, NodeId
from repro.controldep.fow import control_dependence
from repro.controldep.regions_fast import control_regions


class ControlDependenceGraph:
    """Region-factored control dependences of a CFG."""

    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.regions: List[List[NodeId]] = control_regions(cfg)
        self.region_of: Dict[NodeId, int] = {}
        for index, group in enumerate(self.regions):
            for node in group:
                self.region_of[node] = index
        # One dependence set per region, taken from a representative member.
        full = control_dependence(cfg)
        self.region_deps: List[FrozenSet[Tuple[NodeId, object]]] = [
            frozenset(full[group[0]]) for group in self.regions
        ]
        self._dependents: Dict[Tuple[NodeId, object], List[int]] = {}
        for index, deps in enumerate(self.region_deps):
            for dep in deps:
                self._dependents.setdefault(dep, []).append(index)

    # ------------------------------------------------------------------
    def cd_set(self, node: NodeId) -> FrozenSet[Tuple[NodeId, object]]:
        """The control-dependence set of ``node``: O(1) + O(answer)."""
        return self.region_deps[self.region_of[node]]

    def same_region(self, a: NodeId, b: NodeId) -> bool:
        """True iff ``a`` and ``b`` have identical control dependences."""
        return self.region_of[a] == self.region_of[b]

    def dependent_regions(self, dependence: Tuple[NodeId, object]) -> List[List[NodeId]]:
        """All regions control dependent on ``(controlling node, edge)``."""
        return [self.regions[i] for i in self._dependents.get(dependence, [])]

    def stored_pairs(self) -> int:
        """Dependence pairs stored (the factorization's space)."""
        return sum(len(deps) for deps in self.region_deps)

    def unfactored_pairs(self) -> int:
        """Pairs an unfactored per-node table would store."""
        return sum(
            len(self.region_deps[self.region_of[node]]) for node in self.cfg.nodes
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ControlDependenceGraph({len(self.regions)} regions, "
            f"{self.stored_pairs()}/{self.unfactored_pairs()} pairs stored)"
        )
