"""repro -- the Program Structure Tree (Johnson, Pearson & Pingali, PLDI 1994).

A complete reproduction of the paper's system:

* linear-time edge cycle equivalence (:mod:`repro.core.cycle_equiv`),
* canonical SESE regions and the PST (:mod:`repro.core`),
* linear-time control regions (:mod:`repro.controldep`),
* dominance substrate incl. Lengauer-Tarjan (:mod:`repro.dominance`),
* SSA construction, classic and PST-based (:mod:`repro.ssa`),
* dataflow analysis: iterative, elimination, and QPG-sparse
  (:mod:`repro.dataflow`),
* the MiniLang front end (:mod:`repro.lang`) and synthetic workload
  generators (:mod:`repro.synth`) standing in for the paper's FORTRAN
  benchmarks.

Quickstart::

    from repro import cfg_from_edges, build_pst

    g = cfg_from_edges([
        ("start", "a"), ("a", "b", "T"), ("a", "c", "F"),
        ("b", "d"), ("c", "d"), ("d", "end"),
    ])
    pst = build_pst(g)
    for region in pst.canonical_regions():
        print(region.describe(), "depth", region.depth)
"""

from repro.cfg import CFG, CFGBuilder, Edge, InvalidCFGError, cfg_from_edges
from repro.core import (
    ProgramStructureTree,
    RegionKind,
    SESERegion,
    build_pst,
    canonical_sese_regions,
    classify_pst,
    classify_region,
    cycle_equivalence,
    cycle_equivalence_scc,
)
from repro.core.cycle_equiv import cycle_equivalence_of_cfg

__version__ = "1.0.0"

__all__ = [
    "CFG",
    "CFGBuilder",
    "Edge",
    "InvalidCFGError",
    "cfg_from_edges",
    "ProgramStructureTree",
    "RegionKind",
    "SESERegion",
    "build_pst",
    "canonical_sese_regions",
    "classify_pst",
    "classify_region",
    "cycle_equivalence",
    "cycle_equivalence_scc",
    "cycle_equivalence_of_cfg",
    "__version__",
]
