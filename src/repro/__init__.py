"""repro -- the Program Structure Tree (Johnson, Pearson & Pingali, PLDI 1994).

A complete reproduction of the paper's system:

* linear-time edge cycle equivalence (:mod:`repro.core.cycle_equiv`),
* canonical SESE regions and the PST (:mod:`repro.core`),
* linear-time control regions (:mod:`repro.controldep`),
* dominance substrate incl. Lengauer-Tarjan (:mod:`repro.dominance`),
* SSA construction, classic and PST-based (:mod:`repro.ssa`),
* dataflow analysis: iterative, elimination, and QPG-sparse
  (:mod:`repro.dataflow`),
* the MiniLang front end (:mod:`repro.lang`) and synthetic workload
  generators (:mod:`repro.synth`) standing in for the paper's FORTRAN
  benchmarks.

Quickstart::

    from repro import build_cfg, build_pst, run_analysis

    g = build_cfg([
        ("start", "a"), ("a", "b", "T"), ("a", "c", "F"),
        ("b", "d"), ("c", "d"), ("d", "end"),
    ])
    pst = build_pst(g)
    for region in pst.canonical_regions():
        print(region.describe(), "depth", region.depth)

    result = run_analysis(g)          # guarded: fast paths + verified fallback
    assert result.ok and not result.degraded

This module is the canonical import surface: graph construction
(:func:`build_cfg`), the paper's analyses (:func:`cycle_equivalence`,
:func:`build_pst`, :func:`control_regions`), the resilient engine
(:func:`run_analysis`, :func:`run_batch`, :class:`AnalysisConfig`), cached
sessions (:class:`AnalysisSession`, :func:`session_for`), the edit surface
(:class:`EditSession`, :func:`apply_delta`), and observability
(:class:`Observer`).  Deep imports keep working, but the promoted names
under ``repro.kernel``, ``repro.resilience``, and (for
``IncrementalDataflow``) ``repro.dataflow`` package attributes now emit
:class:`DeprecationWarning`.
"""

from repro.cfg import CFG, CFGBuilder, Edge, InvalidCFGError, cfg_from_edges
from repro.core import (
    ProgramStructureTree,
    RegionKind,
    SESERegion,
    build_pst,
    canonical_sese_regions,
    classify_pst,
    classify_region,
    cycle_equivalence,
    cycle_equivalence_scc,
)
from repro.core.cycle_equiv import cycle_equivalence_of_cfg

#: Canonical spelling for building a CFG from an edge list.
build_cfg = cfg_from_edges

__version__ = "1.0.0"

# The engine/session/observability layer imports the analysis modules above,
# so these re-exports are lazy (PEP 562) -- both to break the cycle and to
# keep `import repro` light for callers that only build graphs.
_LAZY = {
    "AnalysisConfig": "repro.config",
    "DEFAULT_CONFIG": "repro.config",
    "AnalysisResult": "repro.resilience.engine",
    "Diagnostic": "repro.resilience.engine",
    "run_analysis": "repro.resilience.engine",
    "run_batch": "repro.resilience.batch",
    "BatchReport": "repro.resilience.batch",
    "FaultPlan": "repro.resilience.faults",
    "AnalysisSession": "repro.kernel.session",
    "session_for": "repro.kernel.session",
    "Observer": "repro.obs.observer",
    "control_regions": "repro.controldep.regions_fast",
    "EditSession": "repro.incremental",
    "apply_delta": "repro.incremental",
    "DeltaValidationError": "repro.incremental",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


__all__ = [
    "AnalysisConfig",
    "AnalysisResult",
    "AnalysisSession",
    "BatchReport",
    "CFG",
    "CFGBuilder",
    "DEFAULT_CONFIG",
    "DeltaValidationError",
    "Diagnostic",
    "Edge",
    "EditSession",
    "FaultPlan",
    "InvalidCFGError",
    "Observer",
    "ProgramStructureTree",
    "RegionKind",
    "SESERegion",
    "apply_delta",
    "build_cfg",
    "build_pst",
    "canonical_sese_regions",
    "cfg_from_edges",
    "classify_pst",
    "classify_region",
    "control_regions",
    "cycle_equivalence",
    "cycle_equivalence_of_cfg",
    "cycle_equivalence_scc",
    "run_analysis",
    "run_batch",
    "session_for",
    "__version__",
]
