"""One frozen configuration object for the whole analysis surface.

:class:`AnalysisConfig` replaces the ad-hoc keyword sprawl of
:func:`repro.resilience.engine.run_analysis`,
:func:`repro.resilience.batch.run_batch`, and
:func:`repro.kernel.session.session_for`: engine behaviour (retry ladder,
postcondition scope), guards (deadline/step budget), fault injection,
observability, and batch execution (workers, retries, backoff) live in one
immutable, reusable value::

    from repro import AnalysisConfig, Observer, run_analysis

    config = AnalysisConfig(deadline=2.0, observer=Observer())
    result = run_analysis(cfg, config=config)

The old per-call keywords still work but emit :class:`DeprecationWarning`;
:func:`coalesce_config` is the single place that folds them in, so every
entry point deprecates identically.

The dataclass is frozen so a config can be shared across threads, batches,
and sessions without defensive copying; derive variants with
:meth:`AnalysisConfig.replace`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.obs.observer import Observer

#: The analyses run_analysis knows how to run, in default order.
ALL_ANALYSES: Tuple[str, ...] = ("pst", "dominators", "control-regions")

#: Graphs with at most this many edges get the *full* slow cross-check as a
#: postcondition (it is microseconds there); larger graphs rely on the
#: structural and dominance checks, which stay O(E).
DEFAULT_FULL_CHECK_LIMIT = 256


@dataclass(frozen=True)
class AnalysisConfig:
    """Everything the analysis stack is allowed to vary, in one value.

    Engine
        ``analyses`` (None = all three stages), ``fast_retries``,
        ``full_check_limit``, ``engine`` (a custom engine callable for
        :func:`~repro.resilience.batch.run_batch`; ``None`` = the built-in
        :func:`~repro.resilience.engine.run_analysis`).
    Guards
        ``deadline`` seconds (global per engine call), ``step_budget``
        per attempt, ``check_every`` checkpoint spacing.
    Faults
        ``faults`` -- a :class:`~repro.resilience.faults.FaultPlan`
        installed for the duration of each engine call.
    Observability
        ``observer`` -- a :class:`~repro.obs.observer.Observer` installed
        ambiently for the duration of each call; ``profile`` arms
        per-phase :meth:`~repro.resilience.guards.Ticker.mark` timers on
        every ticker the engine creates.  An observer is compatible with
        ``workers > 1``: :func:`~repro.resilience.batch.run_batch` gives
        each worker process a fresh shard built from the observer's
        switches and merges the shards (spans re-parented, metrics
        summed) back into this observer as items complete.
    Batch
        ``workers``, ``retries``, ``backoff``, ``backoff_factor``,
        ``shared_batch_memory`` (ship worker items as shared-memory CSR
        handles instead of pickled snapshots when the platform allows).
    Backend
        ``backend`` -- kernel implementation tier: ``"auto"`` (vectorized
        when NumPy is importable, else the array kernels), ``"kernel"``
        (force the PR 3 array kernels), or ``"vectorized"`` (prefer the
        NumPy/packed-bit tier; silently degrades to ``kernel`` without
        NumPy -- the tiers are exact-parity by contract, so degradation
        is always safe).
    Incremental
        ``incremental`` enables regional PST/cycle-equivalence maintenance
        under :class:`~repro.incremental.session.EditSession` deltas;
        ``verify_incremental_rate`` samples accepted deltas for
        differential verification against recompute-from-scratch.
    """

    analyses: Optional[Tuple[str, ...]] = None
    fast_retries: int = 1
    full_check_limit: int = DEFAULT_FULL_CHECK_LIMIT
    engine: Optional[Callable] = None
    deadline: Optional[float] = None
    step_budget: Optional[int] = None
    check_every: int = 512
    faults: Optional[object] = None  # FaultPlan; untyped to avoid an import cycle
    observer: Optional[Observer] = None
    profile: bool = False
    workers: int = 1
    retries: int = 1
    backoff: float = 0.05
    backoff_factor: float = 2.0
    #: Byte bound for analysis caches (``None`` = unbounded, the historical
    #: behaviour).  When set, the engine's per-call :class:`AnalysisSession`
    #: memoization, :func:`~repro.kernel.session.session_for` sessions, and
    #: the process-wide frozen-CSR registry all evict least-recently-used
    #: entries once their size-accounted cost (CSR array bytes, see
    #: :func:`repro.service.cache.frozen_cost_bytes`) exceeds the bound.
    max_cache_bytes: Optional[int] = None
    #: Kernel implementation tier (see :mod:`repro.kernel.backend`).
    backend: str = "auto"
    #: Allow run_batch workers to attach parent-owned shared-memory CSR
    #: segments (zero-copy) instead of unpickling a full snapshot per item.
    #: Disabling forces the portable pickled path.
    shared_batch_memory: bool = True
    #: Maintain cached analyses incrementally under CFG edit deltas (the
    #: :class:`~repro.incremental.session.EditSession` regional-splice
    #: path).  ``False`` makes every delta trigger a full recompute --
    #: slower, but bit-for-bit the reference behaviour.
    incremental: bool = False
    #: Fraction of accepted deltas whose incremental result is differentially
    #: verified against a recompute-from-scratch (0.0 = never, 1.0 = every
    #: delta).  A mismatch adopts the scratch result and is counted, never
    #: raised -- the production-sampling arm of the fuzz oracle.
    verify_incremental_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.fast_retries < 0:
            raise ValueError("fast_retries must be >= 0")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.check_every < 1:
            raise ValueError("check_every must be >= 1")
        if self.full_check_limit < 0:
            raise ValueError("full_check_limit must be >= 0")
        if self.backoff < 0 or self.backoff_factor < 0:
            raise ValueError("backoff and backoff_factor must be >= 0")
        if self.step_budget is not None and self.step_budget < 0:
            raise ValueError("step_budget must be >= 0")
        if self.max_cache_bytes is not None and self.max_cache_bytes < 0:
            raise ValueError("max_cache_bytes must be >= 0")
        if not 0.0 <= self.verify_incremental_rate <= 1.0:
            raise ValueError("verify_incremental_rate must be within [0, 1]")
        from repro.kernel.backend import VALID_BACKENDS

        if self.backend not in VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {', '.join(VALID_BACKENDS)}; "
                f"got {self.backend!r}"
            )
        if self.analyses is not None:
            # Normalize any iterable to a tuple so the config stays hashable.
            object.__setattr__(self, "analyses", tuple(self.analyses))

    def replace(self, **changes) -> "AnalysisConfig":
        """A copy with ``changes`` applied (the frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)


#: The all-defaults config every entry point starts from.
DEFAULT_CONFIG = AnalysisConfig()

_UNSET = object()


def coalesce_config(
    config: Optional[AnalysisConfig],
    caller: str,
    legacy: Dict[str, object],
) -> AnalysisConfig:
    """Fold deprecated per-call keywords into a config, warning once per call.

    ``legacy`` maps field name -> value, with :data:`_UNSET` marking
    keywords the caller did not pass.  Explicit legacy keywords override
    the corresponding ``config`` field (matching the historical behaviour
    where the keyword was the only spelling).
    """
    supplied = {k: v for k, v in legacy.items() if v is not _UNSET}
    if supplied:
        warnings.warn(
            f"{caller}: keyword(s) {', '.join(sorted(supplied))} are "
            "deprecated; pass config=AnalysisConfig(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    base = config if config is not None else DEFAULT_CONFIG
    return base.replace(**supplied) if supplied else base
