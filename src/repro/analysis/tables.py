"""Plain-text rendering of tables, histograms and scatter summaries.

The benchmark harnesses print the paper's tables and figure series as text;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """A fixed-width table with right-aligned numeric columns."""
    texts = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in texts:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def align(cell: str, i: int, numeric: bool) -> str:
        return cell.rjust(widths[i]) if numeric else cell.ljust(widths[i])

    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row, text_row in zip(rows, texts):
        cells = []
        for i, cell in enumerate(text_row):
            numeric = isinstance(row[i], (int, float))
            cells.append(align(cell, i, numeric))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_histogram(counts: Dict[int, int], label: str = "value", width: int = 40) -> str:
    """An ASCII bar histogram keyed by integer buckets."""
    if not counts:
        return "(empty)"
    peak = max(counts.values())
    total = sum(counts.values())
    lines = []
    cumulative = 0
    for key in sorted(counts):
        count = counts[key]
        cumulative += count
        bar = "#" * max(1, round(width * count / peak))
        lines.append(
            f"{label} {key:>3}: {count:>6}  {bar}  ({100 * cumulative / total:5.1f}% cum)"
        )
    return "\n".join(lines)


def format_scatter(
    points: Sequence[Tuple[float, float]],
    x_label: str,
    y_label: str,
    buckets: int = 8,
) -> str:
    """Summarize a scatter series by bucketed means (text stand-in for a plot)."""
    if not points:
        return "(empty)"
    xs = [p[0] for p in points]
    lo, hi = min(xs), max(xs)
    span = max(hi - lo, 1e-9)
    sums = [0.0] * buckets
    counts = [0] * buckets
    for x, y in points:
        index = min(buckets - 1, int((x - lo) / span * buckets))
        sums[index] += y
        counts[index] += 1
    lines = [f"{x_label:>24}  {'n':>6}  mean {y_label}"]
    for i in range(buckets):
        if counts[i] == 0:
            continue
        left = lo + span * i / buckets
        right = lo + span * (i + 1) / buckets
        lines.append(f"{f'[{left:.0f}, {right:.0f})':>24}  {counts[i]:>6}  {sums[i] / counts[i]:.2f}")
    return "\n".join(lines)
