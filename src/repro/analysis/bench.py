"""Self-contained performance micro-suite behind ``repro bench``.

Times the array kernels against their object-graph reference
implementations (cycle equivalence, Lengauer-Tarjan, PST construction,
control regions) on synthetic procedures, plus the batch driver serial vs
parallel, and writes machine-readable JSON under ``benchmarks/results/``
without needing pytest.

The headline numbers per component are *ratios* against the reference (of
the best wall-clock over ``--repeats`` runs): ``ratio`` for the array
kernels and ``vectorized_ratio`` for the NumPy-vectorized tier (see
:mod:`repro.kernel.backend`; without NumPy the vectorized tier degrades to
the kernels and the two ratios coincide).  Ratios are measured within one
process on one host, so they are stable across machines in a way absolute
times are not; the CI perf-smoke job compares them against the checked-in
``perf_smoke_baseline.json`` and fails on a >25% regression
(``--check``/``--tolerance``).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import subprocess
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import EXIT_BUDGET_EXCEEDED

DEFAULT_SIZES = (500, 2000)
DEFAULT_REPEATS = 5
DEFAULT_OUT = os.path.join("benchmarks", "results")


def _sample(fn: Callable[[], object], repeats: int) -> List[float]:
    """Wall-clock seconds for ``repeats`` runs, with warmup and GC paused."""
    fn()  # warmup
    times: List[float] = []
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            fn()
            times.append(time.perf_counter() - started)
    finally:
        if enabled:
            gc.enable()
    return times


def _stats(times: List[float]) -> Dict[str, float]:
    return {
        "median_s": statistics.median(times),
        "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "min_s": min(times),
        "repeats": len(times),
    }


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def _components() -> Dict[str, Tuple[Callable, Callable]]:
    """name -> (fast path, object-graph reference), both ``ctx -> result``.

    ``ctx`` is the per-size context built by :func:`run_kernel_bench`
    (keys ``cfg``, ``proc``, ``reaching``).  The fast path is timed twice,
    once per backend tier (kernel and vectorized).
    """
    from repro.controldep.regions_fast import control_regions, control_regions_reference
    from repro.core.cycle_equiv import (
        cycle_equivalence_of_cfg,
        cycle_equivalence_of_cfg_reference,
    )
    from repro.core.pst import build_pst, build_pst_reference
    from repro.dataflow.iterative import solve_iterative, solve_iterative_reference
    from repro.dominance.lengauer_tarjan import lengauer_tarjan, lengauer_tarjan_reference

    return {
        "cycle_equiv": (
            lambda ctx: cycle_equivalence_of_cfg(ctx["cfg"], validate=False),
            lambda ctx: cycle_equivalence_of_cfg_reference(ctx["cfg"], validate=False),
        ),
        "lengauer_tarjan": (
            lambda ctx: lengauer_tarjan(ctx["cfg"]),
            lambda ctx: lengauer_tarjan_reference(ctx["cfg"]),
        ),
        "build_pst": (
            lambda ctx: build_pst(ctx["cfg"]),
            lambda ctx: build_pst_reference(ctx["cfg"]),
        ),
        "control_regions": (
            lambda ctx: control_regions(ctx["cfg"], validate=False),
            lambda ctx: control_regions_reference(ctx["cfg"], validate=False),
        ),
        "solve_iterative": (
            lambda ctx: solve_iterative(ctx["cfg"], ctx["reaching"]),
            lambda ctx: solve_iterative_reference(ctx["cfg"], ctx["reaching"]),
        ),
    }


def run_kernel_bench(sizes: List[int], repeats: int, seed: int = 42) -> Dict[str, list]:
    """Time every fast/reference pair on one procedure per size.

    The fast path runs under both backend tiers (``kernel`` and
    ``vectorized``); on a NumPy-less host the two tiers are the same code
    and the two ratios come out (noise aside) equal.
    """
    from repro.dataflow.problems import ReachingDefinitions
    from repro.kernel.backend import use_backend
    from repro.synth.structured import random_lowered_procedure

    graphs = []
    for statements in sizes:
        proc = random_lowered_procedure(seed, target_statements=statements)
        graphs.append(
            (statements, {"proc": proc, "cfg": proc.cfg, "reaching": ReachingDefinitions(proc)})
        )

    results: Dict[str, list] = {}
    for name, (fast, reference) in _components().items():
        series = []
        for statements, ctx in graphs:
            with use_backend("kernel"):
                kernel_times = _sample(lambda: fast(ctx), repeats)
            with use_backend("vectorized"):
                vectorized_times = _sample(lambda: fast(ctx), repeats)
            reference_times = _sample(lambda: reference(ctx), repeats)
            cfg = ctx["cfg"]
            series.append(
                {
                    "statements": statements,
                    "nodes": cfg.num_nodes,
                    "edges": cfg.num_edges,
                    "kernel": _stats(kernel_times),
                    "vectorized": _stats(vectorized_times),
                    "reference": _stats(reference_times),
                    "ratio": min(kernel_times) / min(reference_times),
                    "vectorized_ratio": min(vectorized_times) / min(reference_times),
                }
            )
        results[name] = series
    return results


def run_batch_bench(items: int, workers: int, size: int = 120, seed: int = 7) -> dict:
    """Time the batch driver serial vs parallel on a synthetic corpus.

    On single-core hosts the parallel run is expected to be *slower*
    (pure process overhead); consumers must gate on ``cpu_count``.
    """
    from repro.resilience.batch import run_batch
    from repro.synth.structured import random_lowered_procedure

    cfgs = [
        random_lowered_procedure(seed + i, target_statements=size).cfg
        for i in range(items)
    ]

    def corpus():
        return [(f"item{i}", (lambda c=cfg: c)) for i, cfg in enumerate(cfgs)]

    t0 = time.perf_counter()
    serial_report = run_batch(corpus(), workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel_report = run_batch(corpus(), workers=workers)
    parallel_s = time.perf_counter() - t0
    serial_statuses = [r.status for r in serial_report.results]
    parallel_statuses = [r.status for r in parallel_report.results]
    return {
        "items": items,
        "workers": workers,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s,
        "statuses_agree": serial_statuses == parallel_statuses,
    }


def run_incremental_bench(
    size: int = 4000, edits: int = 100, seed: int = 42
) -> dict:
    """Per-edit incremental maintenance vs recompute-from-scratch.

    Builds one large procedure, times the scratch pipeline (cycle
    equivalence + PST), then drives an :class:`~repro.incremental.EditSession`
    through ``edits`` add-edge/undo pairs (the graph ends exactly where it
    started, so every timed edit does real splice work on the same
    structure).  Edits are *local* -- a parallel edge over a random
    existing edge, the workload the splice path exists for; the fuzz
    oracle, not this benchmark, covers arbitrary region-escaping edits.

    The headline ``speedup`` is scratch seconds over the *median* per-edit
    seconds -- the typical local edit, gated by ``--check`` when the
    baseline carries an ``incremental.min_speedup``.  The mean
    (``mean_speedup``) is reported alongside but not gated: a tail of
    edits lands in a region covering most of the graph, where the session
    deliberately recomputes from scratch (``stats.oversize_regions``), so
    the mean converges to the oversize-tail frequency rather than to
    splice performance.
    """
    import statistics as _statistics
    import random as _random

    from repro.core.cycle_equiv import cycle_equivalence_of_cfg
    from repro.core.pst import build_pst
    from repro.incremental import DeltaValidationError, EditSession
    from repro.synth.structured import random_lowered_procedure

    proc = random_lowered_procedure(seed, target_statements=size)
    cfg = proc.cfg

    def scratch():
        equiv = cycle_equivalence_of_cfg(cfg, validate=False)
        equiv.class_of  # materialize: the session pays this cost too
        build_pst(cfg, equiv)

    scratch_times = _sample(scratch, 5)

    session = EditSession(cfg)
    rng = _random.Random(seed)
    candidates = [
        edge
        for edge in cfg.edges
        if edge.source != cfg.start and edge.target != cfg.end
    ]
    pair_times: List[float] = []
    while len(pair_times) < edits:
        edge = rng.choice(candidates)
        started = time.perf_counter()
        try:
            session.add_edge(edge.source, edge.target)
        except DeltaValidationError:
            continue
        session.undo()
        # The add and its undo are each one maintained edit.
        pair_times.append((time.perf_counter() - started) / 2)
    scratch_s = min(scratch_times)
    median_s = _statistics.median(pair_times)
    mean_s = _statistics.mean(pair_times)
    return {
        "statements": size,
        "nodes": cfg.num_nodes,
        "edges": cfg.num_edges,
        "edits": 2 * len(pair_times),
        "scratch_s": scratch_s,
        "per_edit_median_s": median_s,
        "per_edit_mean_s": mean_s,
        "speedup": scratch_s / median_s,
        "mean_speedup": scratch_s / mean_s,
        "stats": session.stats.as_dict(),
    }


def check_against_baseline(
    record: dict, baseline: dict, tolerance: float, out
) -> List[str]:
    """Ratio regressions of ``record`` vs ``baseline``, as printed lines.

    A component regresses when one of its reference-relative ratios
    (``ratio`` for the kernel tier, ``vectorized_ratio`` for the
    vectorized tier) at some size grew by more than ``tolerance``
    (relative).  Missing components, sizes, or ratio kinds in either file
    are skipped, not failed, so the suite can evolve.
    """
    failures: List[str] = []
    base_components = baseline.get("components", {})
    for name, series in record.get("components", {}).items():
        base_series = {row["statements"]: row for row in base_components.get(name, [])}
        for row in series:
            base_row = base_series.get(row["statements"])
            if base_row is None:
                continue
            for kind in ("ratio", "vectorized_ratio"):
                if kind not in row or kind not in base_row:
                    continue
                ratio, base_ratio = row[kind], base_row[kind]
                limit = base_ratio * (1.0 + tolerance)
                verdict = "ok" if ratio <= limit else "REGRESSED"
                print(
                    f"  {name} @ {row['statements']}: {kind} {ratio:.3f} "
                    f"(baseline {base_ratio:.3f}, limit {limit:.3f}) {verdict}",
                    file=out,
                )
                if ratio > limit:
                    failures.append(f"{name} @ {row['statements']} ({kind})")
    return failures


def build_bench_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Time the array kernels vs their object-graph references "
        "and write machine-readable JSON under benchmarks/results/",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES), metavar="N",
        help=f"procedure sizes in statements (default {' '.join(map(str, DEFAULT_SIZES))})",
    )
    parser.add_argument(
        "--repeats", type=int, default=DEFAULT_REPEATS,
        help=f"timed runs per measurement (default {DEFAULT_REPEATS})",
    )
    parser.add_argument(
        "--out", metavar="DIR", default=DEFAULT_OUT,
        help=f"directory for the JSON results (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--name", default="bench_kernels",
        help="basename of the results file (default bench_kernels)",
    )
    parser.add_argument(
        "--batch-items", type=int, default=0, metavar="N",
        help="also time the batch driver serial vs parallel on N items (default: skip)",
    )
    parser.add_argument(
        "--batch-workers", type=int, default=2, metavar="N",
        help="worker processes for the batch comparison (default 2)",
    )
    parser.add_argument(
        "--edit-size", type=int, default=4000, metavar="N",
        help="procedure size in statements for the incremental edit-stream "
        "measurement (default 4000)",
    )
    parser.add_argument(
        "--edit-count", type=int, default=100, metavar="N",
        help="add-edge/undo pairs for the incremental measurement (default 100)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare kernel/reference ratios (and the incremental speedup, "
        "when the baseline carries incremental.min_speedup) against this "
        "baseline JSON and exit 3 on regression",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed relative ratio growth under --check (default 0.25)",
    )
    parser.add_argument(
        "--slo", metavar="FILE", default=None,
        help="also gate service SLO rows from this JSON (a `repro soak "
        "--out` report, or a BENCH_perf.json carrying service_slo) and "
        "exit 3 when any band's p99 exceeds its budget",
    )
    return parser


def check_slo_rows(data: dict, out) -> List[str]:
    """SLO violations in a soak report / BENCH_perf ``service_slo`` block.

    Each row carries ``band``, ``n``, ``p99_s``, and ``budget_s`` (see
    :mod:`repro.service.soak`); a row violates when its p99 exceeds its
    budget.  Bands with no samples are reported but do not fail -- an SLO
    over zero requests is vacuous, and the soak harness separately fails
    runs that made no requests at all.
    """
    rows = data.get("slo")
    if rows is None:
        rows = (data.get("service_slo") or {}).get("rows")
    if not rows:
        return ["no SLO rows found (expected 'slo' or 'service_slo.rows')"]
    failures: List[str] = []
    for row in rows:
        band = row.get("band", "?")
        n = int(row.get("n", 0))
        p99 = float(row.get("p99_s", 0.0))
        budget = float(row.get("budget_s", 0.0))
        if n == 0:
            print(f"  slo {band}: no samples (skipped)", file=out)
            continue
        verdict = "ok" if p99 <= budget else "OVER BUDGET"
        print(
            f"  slo {band}: n={n} p99={p99:.4f}s budget={budget:.2f}s {verdict}",
            file=out,
        )
        if p99 > budget:
            failures.append(f"{band} p99 {p99:.3f}s > {budget:.2f}s")
    return failures


def bench_main(argv: List[str], out) -> int:
    args = build_bench_arg_parser().parse_args(argv)
    if args.repeats < 1 or any(s < 1 for s in args.sizes):
        print("error: --repeats and --sizes must be >= 1", file=sys.stderr)
        return 2

    print(
        f"repro bench: sizes {args.sizes}, {args.repeats} repeats, "
        f"{os.cpu_count()} cpu(s)",
        file=out,
    )
    components = run_kernel_bench(args.sizes, args.repeats)
    for name, series in components.items():
        for row in series:
            print(
                f"  {name} @ {row['statements']}: kernel "
                f"{1000 * row['kernel']['min_s']:.1f} ms, vectorized "
                f"{1000 * row['vectorized']['min_s']:.1f} ms, reference "
                f"{1000 * row['reference']['min_s']:.1f} ms, "
                f"ratio {row['ratio']:.3f}, "
                f"vectorized_ratio {row['vectorized_ratio']:.3f}",
                file=out,
            )

    record = {
        "bench": args.name,
        "git_rev": _git_rev(),
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "sizes": list(args.sizes),
        "repeats": args.repeats,
        "components": components,
    }
    incremental = run_incremental_bench(
        size=args.edit_size, edits=args.edit_count
    )
    record["incremental"] = incremental
    print(
        f"  incremental @ {incremental['statements']}: scratch "
        f"{1000 * incremental['scratch_s']:.1f} ms, per-edit median "
        f"{1000 * incremental['per_edit_median_s']:.3f} ms over "
        f"{incremental['edits']} edits, speedup {incremental['speedup']:.1f}x "
        f"median / {incremental['mean_speedup']:.1f}x mean "
        f"({incremental['stats']['splices']} splices, "
        f"{incremental['stats']['full_recomputes']} full recomputes)",
        file=out,
    )
    if args.batch_items > 0:
        batch = run_batch_bench(args.batch_items, args.batch_workers)
        record["batch"] = batch
        print(
            f"  batch x{batch['items']}: serial {batch['serial_s']:.2f} s, "
            f"{batch['workers']} workers {batch['parallel_s']:.2f} s, "
            f"speedup {batch['speedup']:.2f}x",
            file=out,
        )

    try:
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, f"{args.name}.json")
        with open(path, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(f"wrote {path}", file=out)

    if args.check:
        try:
            with open(args.check) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read baseline {args.check}: {error}", file=sys.stderr)
            return 2
        print(f"checking ratios against {args.check} (+{100 * args.tolerance:.0f}%)", file=out)
        failures = check_against_baseline(record, baseline, args.tolerance, out)
        min_speedup = (baseline.get("incremental") or {}).get("min_speedup")
        if min_speedup is not None:
            speedup = record["incremental"]["speedup"]
            verdict = "ok" if speedup >= float(min_speedup) else "REGRESSED"
            print(
                f"  incremental: median-edit speedup {speedup:.1f}x "
                f"(floor {float(min_speedup):.1f}x) {verdict}",
                file=out,
            )
            if speedup < float(min_speedup):
                failures.append("incremental speedup below floor")
        if failures:
            print(f"perf regression in: {', '.join(failures)}", file=out)
            # Exit 3: a declared (ratio) budget was exceeded, distinct from
            # the generic diagnostics exit 1 (see repro.errors).
            return EXIT_BUDGET_EXCEEDED
        print("perf smoke: all ratios within tolerance", file=out)

    if args.slo:
        try:
            with open(args.slo) as handle:
                slo_data = json.load(handle)
        except (OSError, ValueError) as error:
            print(f"error: cannot read SLO file {args.slo}: {error}", file=sys.stderr)
            return 2
        print(f"checking service SLO rows from {args.slo}", file=out)
        slo_failures = check_slo_rows(slo_data, out)
        if slo_failures:
            print(f"service SLO exceeded: {', '.join(slo_failures)}", file=out)
            return EXIT_BUDGET_EXCEEDED
        print("service SLO: all bands within budget", file=out)
    return 0
