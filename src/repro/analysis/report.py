"""One-call regeneration of every paper statistic (no timing).

``python -m repro.analysis.report [scale]`` prints the full set of
evaluation tables and series (experiments T1, F5, F6, F7, F9, F10, P4 of
DESIGN.md) for the standard corpus; the benchmark harness under
``benchmarks/`` adds the timing experiments on top of the same functions.
"""

from __future__ import annotations

import statistics
import sys
from typing import List, Optional

from repro.analysis.pst_stats import corpus_stats, phi_sparsity, qpg_sizes
from repro.analysis.tables import format_histogram, format_scatter, format_table
from repro.synth.corpus import CorpusProgram, all_procedures, corpus_table, standard_corpus


def generate_report(scale: float = 1.0, corpus: Optional[List[CorpusProgram]] = None) -> str:
    """The full evaluation report as one text block."""
    corpus = standard_corpus(scale=scale) if corpus is None else corpus
    procs = all_procedures(corpus)
    stats = corpus_stats(procs)
    sections: List[str] = []

    sections.append("== T1: benchmark corpus ==\n" + corpus_table(corpus))

    depth = stats.depth
    sections.append(
        "== F5: region nesting depth ==\n"
        f"regions: {depth.total}   average depth: {depth.average:.2f}   "
        f"max: {depth.maximum}   at depth <= 6: {100 * depth.cumulative_fraction(6):.1f}%\n"
        + format_histogram(depth.counts, label="depth")
    )

    sections.append(
        "== F6(a): PST size vs procedure size ==\n"
        + format_scatter([(s, r) for s, r, _, _ in stats.profile], "procedure size", "regions")
        + "\n\n== F6(b): average depth vs procedure size ==\n"
        + format_scatter([(s, d) for s, _, d, _ in stats.profile], "procedure size", "avg depth")
    )

    total_weight = sum(stats.kind_weights.values())
    rows = [
        [kind.value, weight, f"{100 * weight / max(1, total_weight):.1f}%"]
        for kind, weight in sorted(stats.kind_weights.items(), key=lambda kv: -kv[1])
    ]
    sections.append(
        "== F7: weighted region kinds ==\n"
        + format_table(["kind", "weight", "share"], rows)
        + f"\ncompletely structured procedures: {stats.completely_structured}/{stats.procedures}"
    )

    sections.append(
        "== F9: max region size vs procedure size ==\n"
        + format_scatter(
            [(s, m) for s, _, _, m in stats.profile], "procedure size", "max region"
        )
    )

    fractions = phi_sparsity(procs)
    under_fifth = sum(1 for f in fractions if f < 0.2) / max(1, len(fractions))
    buckets = {}
    for fraction in fractions:
        bucket = min(9, int(fraction * 10))
        buckets[bucket] = buckets.get(bucket, 0) + 1
    sections.append(
        "== F10: fraction of regions examined per variable ==\n"
        f"variables: {len(fractions)}   under 1/5 of regions: {100 * under_fifth:.1f}%\n"
        + format_histogram(buckets, label="decile")
    )

    qpg_rows = qpg_sizes(procs)
    aggregate = sum(q for _, _, q in qpg_rows) / max(1, sum(n for n, _, _ in qpg_rows))
    ratios = [q / max(1, n) for n, _, q in qpg_rows]
    sections.append(
        "== P4: QPG sizes (per-variable reaching definitions) ==\n"
        f"instances: {len(qpg_rows)}   aggregate vs statement-level CFG: "
        f"{100 * aggregate:.1f}%   per-instance median: "
        f"{100 * statistics.median(ratios):.1f}%"
    )

    return "\n\n".join(sections) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    scale = float(argv[0]) if argv else 1.0
    sys.stdout.write(generate_report(scale=scale))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
