"""Statistics over PSTs of a corpus: the data behind Figures 5, 6, 7, 9, 10.

Every function takes :class:`~repro.ir.LoweredProcedure` lists (usually the
synthetic corpus from :mod:`repro.synth.corpus`) and returns plain data
structures the benchmark harnesses print as the paper's rows/series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.pst import ProgramStructureTree
from repro.kernel.session import session_for
from repro.core.region_kinds import RegionKind, classify_pst, is_completely_structured, region_weight
from repro.dataflow.problems import VariableReachingDefs
from repro.dataflow.qpg import build_qpg
from repro.ir import LoweredProcedure
from repro.ssa.pst_phi import place_phis_pst


@dataclass
class DepthDistribution:
    """Figure 5: region counts per nesting depth."""

    counts: Dict[int, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def average(self) -> float:
        if not self.counts:
            return 0.0
        return sum(d * c for d, c in self.counts.items()) / self.total

    @property
    def maximum(self) -> int:
        return max(self.counts, default=0)

    def cumulative_fraction(self, depth: int) -> float:
        """Fraction of regions at nesting depth <= ``depth`` (Figure 5b)."""
        if self.total == 0:
            return 0.0
        covered = sum(c for d, c in self.counts.items() if d <= depth)
        return covered / self.total


@dataclass
class CorpusStats:
    """Aggregate §4 statistics over a set of procedures."""

    procedures: int = 0
    regions: int = 0
    completely_structured: int = 0
    depth: DepthDistribution = field(default_factory=DepthDistribution)
    kind_weights: Dict[RegionKind, int] = field(default_factory=dict)
    # (procedure size in blocks, PST size, average depth, max region size)
    profile: List[Tuple[int, int, float, int]] = field(default_factory=list)


def depth_distribution(psts: List[ProgramStructureTree]) -> DepthDistribution:
    """Region counts per depth over many PSTs (Figure 5)."""
    dist = DepthDistribution()
    for pst in psts:
        for region in pst.canonical_regions():
            dist.counts[region.depth] = dist.counts.get(region.depth, 0) + 1
    return dist


def kind_distribution(psts: List[ProgramStructureTree]) -> Dict[RegionKind, int]:
    """Weighted region-kind counts (Figure 7)."""
    weights: Dict[RegionKind, int] = {kind: 0 for kind in RegionKind}
    for pst in psts:
        for region, kind in classify_pst(pst).items():
            weights[kind] += region_weight(region)
    return weights


def procedure_profile(procs: List[LoweredProcedure]) -> List[Tuple[int, int, float, int]]:
    """Per-procedure (size, PST size, avg depth, max region size).

    The series behind Figures 6(a), 6(b) and 9: procedure size is the block
    count, PST size the number of canonical regions, and max region size
    the node count of the largest *proper* canonical region.
    """
    out: List[Tuple[int, int, float, int]] = []
    for proc in procs:
        pst = session_for(proc.cfg).pst()
        regions = pst.canonical_regions()
        depths = [r.depth for r in regions]
        avg_depth = sum(depths) / len(depths) if depths else 0.0
        max_size = max((r.size() for r in regions), default=0)
        out.append((proc.cfg.num_nodes, len(regions), avg_depth, max_size))
    return out


def corpus_stats(procs: List[LoweredProcedure]) -> CorpusStats:
    """All §4 aggregates in one pass over the corpus."""
    stats = CorpusStats()
    stats.kind_weights = {kind: 0 for kind in RegionKind}
    for proc in procs:
        pst = session_for(proc.cfg).pst()
        regions = pst.canonical_regions()
        stats.procedures += 1
        stats.regions += len(regions)
        for region in regions:
            stats.depth.counts[region.depth] = stats.depth.counts.get(region.depth, 0) + 1
        kinds = classify_pst(pst)
        for region, kind in kinds.items():
            stats.kind_weights[kind] += region_weight(region)
        if is_completely_structured(kinds):
            stats.completely_structured += 1
        depths = [r.depth for r in regions]
        avg_depth = sum(depths) / len(depths) if depths else 0.0
        max_size = max((r.size() for r in regions), default=0)
        stats.profile.append((proc.cfg.num_nodes, len(regions), avg_depth, max_size))
    return stats


def phi_sparsity(procs: List[LoweredProcedure]) -> List[float]:
    """Per-variable fraction of regions examined during φ-placement.

    The Figure 10 series: one sample per (procedure, variable) pair.  The
    paper reports 5072 variables with ~70% of them examining less than a
    fifth of the regions.
    """
    fractions: List[float] = []
    for proc in procs:
        pst = session_for(proc.cfg).pst()
        result = place_phis_pst(proc, pst)
        for var in result.regions_examined:
            fractions.append(result.examined_fraction(var))
    return fractions


def qpg_sizes(
    procs: List[LoweredProcedure],
    max_vars_per_proc: Optional[int] = None,
    granularity: str = "statement",
) -> List[Tuple[int, int, int]]:
    """(cfg nodes, statements, qpg nodes) per per-variable instance.

    The §6.2 measurement: the paper reports QPGs averaging less than 10% of
    the *statement-level* CFG for single-instance problems, so the default
    granularity explodes blocks into statement chains
    (:func:`repro.ir.statement_level`); pass ``granularity="block"`` to
    measure against block-level CFGs instead.
    """
    from repro.ir import statement_level

    out: List[Tuple[int, int, int]] = []
    for proc in procs:
        target = statement_level(proc) if granularity == "statement" else proc
        pst = session_for(target.cfg).pst()
        statements = proc.num_statements()
        variables = target.variables()
        if max_vars_per_proc is not None:
            variables = variables[:max_vars_per_proc]
        for var in variables:
            problem = VariableReachingDefs(target, var)
            qpg, _, _ = build_qpg(target.cfg, problem, pst)
            out.append((target.cfg.num_nodes, statements, qpg.num_nodes))
    return out
