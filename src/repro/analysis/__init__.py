"""Empirical analysis: the statistics behind the paper's §4 and §6 figures."""

from repro.analysis.pst_stats import (
    CorpusStats,
    DepthDistribution,
    corpus_stats,
    depth_distribution,
    kind_distribution,
    phi_sparsity,
    procedure_profile,
    qpg_sizes,
)
from repro.analysis.tables import format_histogram, format_scatter, format_table

__all__ = [
    "CorpusStats",
    "DepthDistribution",
    "corpus_stats",
    "depth_distribution",
    "kind_distribution",
    "phi_sparsity",
    "procedure_profile",
    "qpg_sizes",
    "format_histogram",
    "format_scatter",
    "format_table",
]
