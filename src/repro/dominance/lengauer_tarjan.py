"""The Lengauer-Tarjan immediate-dominator algorithm ([LT79]).

This is the "simple" variant with path compression (O(E log V)); it is the
algorithm the paper uses as its performance yardstick ("our empirical results
show that [cycle equivalence] runs faster than Lengauer and Tarjan's
algorithm for finding dominators").  The benchmark harness
``benchmarks/bench_perf_cyclequiv_vs_lt.py`` reproduces that comparison.

The implementation is fully iterative (DFS and path compression both use
explicit stacks) so it handles the deep worst-case graphs in the benchmark
suite, and it tolerates multigraphs (parallel edges simply contribute
duplicate predecessor entries, which is harmless).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.graph import CFG, NodeId
from repro.cfg.validate import require_root
from repro.kernel.dominance import kernel_lengauer_tarjan
from repro.kernel.registry import shared_frozen
from repro.obs import observer as _obs
from repro.resilience.guards import Ticker

# Fault-injection hook (repro.resilience.faults installs/clears a plan here;
# see site "lengauer-tarjan/semi-skew").  Always None in production.
_FAULTS = None


def lengauer_tarjan(
    cfg: CFG, root: Optional[NodeId] = None, ticker: Optional[Ticker] = None
) -> Dict[NodeId, NodeId]:
    """Immediate dominators of nodes reachable from ``root``.

    Same contract as :func:`repro.dominance.iterative.immediate_dominators`:
    ``idom[root] == root``, unreachable nodes omitted; degenerate CFGs are
    accepted but a missing root raises
    :class:`~repro.cfg.graph.InvalidCFGError`.  ``ticker`` is charged one
    step per node per phase (DFS numbering -- billed double, standing in for
    the reachability probe the array kernel no longer needs -- and
    semidominators), billed in one bulk ``tick`` at each phase boundary.

    Runs the array kernel
    (:func:`repro.kernel.dominance.kernel_lengauer_tarjan`) over the shared
    frozen snapshot; :func:`lengauer_tarjan_reference` is the retained
    object-graph implementation the fuzz oracles compare against.
    """
    root = require_root(cfg, cfg.start if root is None else root, "Lengauer-Tarjan")
    o = _obs._CURRENT
    if o is None:
        return _lengauer_tarjan(cfg, root, ticker)
    o.count("dispatch", component="lengauer_tarjan", impl="kernel")
    with o.span(
        "lengauer_tarjan", impl="kernel", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return _lengauer_tarjan(cfg, root, ticker)


def _lengauer_tarjan(
    cfg: CFG, root: NodeId, ticker: Optional[Ticker]
) -> Dict[NodeId, NodeId]:
    frozen = shared_frozen(cfg)
    idom = kernel_lengauer_tarjan(frozen, frozen.index_of[root], ticker)
    node_ids = frozen.node_ids
    return {
        node_ids[i]: node_ids[idom[i]]
        for i in range(frozen.num_nodes)
        if idom[i] != -1
    }


def lengauer_tarjan_reference(
    cfg: CFG, root: Optional[NodeId] = None, ticker: Optional[Ticker] = None
) -> Dict[NodeId, NodeId]:
    """Object-graph reference for :func:`lengauer_tarjan` (same contract).

    Billing differs only in shape: a separate reachability probe precedes
    the DFS numbering, charged in the same ``tick(2n)``.
    """
    root = require_root(cfg, cfg.start if root is None else root, "Lengauer-Tarjan")
    o = _obs._CURRENT
    if o is None:
        return _lengauer_tarjan_reference(cfg, root, ticker)
    o.count("dispatch", component="lengauer_tarjan", impl="reference")
    with o.span(
        "lengauer_tarjan", impl="reference", n_nodes=cfg.num_nodes, n_edges=cfg.num_edges
    ):
        return _lengauer_tarjan_reference(cfg, root, ticker)


def _lengauer_tarjan_reference(
    cfg: CFG, root: NodeId, ticker: Optional[Ticker]
) -> Dict[NodeId, NodeId]:
    tick = None if ticker is None else ticker.tick

    # --- step 1: DFS numbering (1-based; 0 is a sentinel) -----------------
    num: Dict[NodeId, int] = {}
    n = 0
    # First pass just counts reachable nodes so arrays can be preallocated.
    probe: List[NodeId] = [root]
    reached = {root}
    while probe:
        node = probe.pop()
        n += 1
        for out_edge in cfg.iter_out_edges(node):
            nxt = out_edge.target
            if nxt not in reached:
                reached.add(nxt)
                probe.append(nxt)
    if tick is not None:
        tick(2 * n)  # the probe just done, plus the DFS numbering to come

    vertex: List[Optional[NodeId]] = [None] * (n + 1)
    parent = [0] * (n + 1)
    dfs_stack: List[tuple] = [(root, 0)]
    counter = 0
    while dfs_stack:
        node, par = dfs_stack.pop()
        if node in num:
            continue
        counter += 1
        num[node] = counter
        vertex[counter] = node
        parent[counter] = par
        for edge in reversed(cfg.iter_out_edges(node)):
            if edge.target not in num:
                dfs_stack.append((edge.target, counter))

    # --- forest for EVAL/LINK with path compression -----------------------
    semi = list(range(n + 1))
    ancestor = [0] * (n + 1)
    label = list(range(n + 1))
    idom_num = [0] * (n + 1)
    buckets: List[List[int]] = [[] for _ in range(n + 1)]

    def compress(v: int) -> None:
        path: List[int] = []
        while ancestor[ancestor[v]] != 0:
            path.append(v)
            v = ancestor[v]
        for u in reversed(path):
            anc = ancestor[u]
            if semi[label[anc]] < semi[label[u]]:
                label[u] = label[anc]
            ancestor[u] = ancestor[anc]

    def evaluate(v: int) -> int:
        if ancestor[v] == 0:
            return v
        compress(v)
        return label[v]

    # --- steps 2 & 3: semidominators and implicit idoms -------------------
    if tick is not None and n > 1:
        tick(n - 1)  # the semidominator sweep about to run
    for w in range(n, 1, -1):
        node = vertex[w]
        for in_edge in cfg.iter_in_edges(node):
            v = num.get(in_edge.source)
            if v is None:
                continue  # unreachable predecessor
            u = evaluate(v)
            if semi[u] < semi[w]:
                semi[w] = semi[u]
        if _FAULTS is not None and semi[w] > 1 and _FAULTS.should_fire(
            "lengauer-tarjan/semi-skew"
        ):
            semi[w] -= 1  # injected fault: off-by-one semidominator
        buckets[semi[w]].append(w)
        ancestor[w] = parent[w]
        p = parent[w]
        for v in buckets[p]:
            u = evaluate(v)
            idom_num[v] = u if semi[u] < semi[v] else p
        buckets[p] = []

    # --- step 4: explicit idoms -------------------------------------------
    for w in range(2, n + 1):
        if idom_num[w] != semi[w]:
            idom_num[w] = idom_num[idom_num[w]]
    idom_num[1] = 1

    return {vertex[w]: vertex[idom_num[w]] for w in range(1, n + 1)}
