"""Iterative immediate dominators (Cooper, Harvey & Kennedy, 2001).

``A Simple, Fast Dominance Algorithm``: a data-flow fixpoint over reverse
postorder using the "intersect by walking up postorder numbers" trick.  For
the shallow graphs typical of programs it converges in a couple of passes.

The returned mapping uses the convention ``idom[root] == root``; only nodes
reachable from the root appear.

Dominance is defined on any rooted flowgraph, so degenerate CFGs (a single
node, ``start == end``, nodes that cannot reach ``end``) are accepted; a
missing or unset root raises :class:`~repro.cfg.graph.InvalidCFGError`
(see :mod:`repro.cfg.validate`).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cfg.graph import CFG, NodeId
from repro.cfg.traversal import reverse_postorder
from repro.cfg.validate import require_root
from repro.obs import observer as _obs
from repro.resilience.guards import Ticker


def immediate_dominators(
    cfg: CFG, root: Optional[NodeId] = None, ticker: Optional[Ticker] = None
) -> Dict[NodeId, NodeId]:
    """Immediate dominators of all nodes reachable from ``root``.

    ``root`` defaults to ``cfg.start``.  ``idom[root] == root``.  ``ticker``
    is charged one step per node per fixpoint sweep (billed in bulk at the
    top of each sweep, so the per-node loop stays guard-free), bounding the
    worst-case O(V) sweeps irreducible graphs can need.

    Runs the array kernel
    (:func:`repro.kernel.dominance.kernel_immediate_dominators`) over the
    shared frozen snapshot; :func:`immediate_dominators_reference` is the
    retained object-graph implementation the fuzz oracles compare against.
    """
    root = require_root(cfg, cfg.start if root is None else root, "dominator computation")
    from repro.kernel.dominance import kernel_immediate_dominators
    from repro.kernel.registry import shared_frozen

    o = _obs._CURRENT
    if o is None:
        frozen = shared_frozen(cfg)
        return kernel_immediate_dominators(frozen, frozen.index_of[root], ticker)
    o.count("dispatch", component="immediate_dominators", impl="kernel")
    with o.span(
        "immediate_dominators",
        impl="kernel",
        n_nodes=cfg.num_nodes,
        n_edges=cfg.num_edges,
    ):
        frozen = shared_frozen(cfg)
        return kernel_immediate_dominators(frozen, frozen.index_of[root], ticker)


def immediate_dominators_reference(
    cfg: CFG, root: Optional[NodeId] = None, ticker: Optional[Ticker] = None
) -> Dict[NodeId, NodeId]:
    """Object-graph reference for :func:`immediate_dominators` (same contract)."""
    root = require_root(cfg, cfg.start if root is None else root, "dominator computation")
    o = _obs._CURRENT
    if o is None:
        return _immediate_dominators(cfg, root, ticker)
    o.count("dispatch", component="immediate_dominators", impl="reference")
    with o.span(
        "immediate_dominators",
        impl="reference",
        n_nodes=cfg.num_nodes,
        n_edges=cfg.num_edges,
    ):
        return _immediate_dominators(cfg, root, ticker)


def _immediate_dominators(
    cfg: CFG, root: NodeId, ticker: Optional[Ticker]
) -> Dict[NodeId, NodeId]:
    tick = None if ticker is None else ticker.tick
    order = reverse_postorder(cfg, root)
    postorder_num = {node: len(order) - 1 - i for i, node in enumerate(order)}
    reachable = set(order)

    idom: Dict[NodeId, NodeId] = {root: root}

    def intersect(a: NodeId, b: NodeId) -> NodeId:
        while a != b:
            while postorder_num[a] < postorder_num[b]:
                a = idom[a]
            while postorder_num[b] < postorder_num[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        if tick is not None:
            tick(len(order))  # the sweep we are about to run
        for node in order:
            if node == root:
                continue
            new_idom: Optional[NodeId] = None
            for in_edge in cfg.iter_in_edges(node):
                pred = in_edge.source
                if pred not in reachable or pred not in idom:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is None:
                continue  # no processed predecessor yet (can't happen after pass 1)
            if idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominates(idom: Dict[NodeId, NodeId], a: NodeId, b: NodeId) -> bool:
    """True iff ``a`` dominates ``b`` under the given idom mapping.

    Walks the dominator-tree path from ``b`` to the root; O(depth).  For
    repeated queries prefer :class:`repro.dominance.tree.DominatorTree`.
    """
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return False
        node = parent
