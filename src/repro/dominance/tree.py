"""Dominator-tree representation with O(1) dominance queries.

The tree is built from an immediate-dominator mapping (either algorithm) and
preprocesses a preorder interval ``[tin, tout]`` per node so that
``a dominates b`` is an O(1) interval-containment check -- the workhorse
query for the SESE-region definition oracle and the SSA renaming walk.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cfg.graph import CFG, NodeId


class DominatorTree:
    """A (post)dominator tree over the reachable nodes of a CFG."""

    def __init__(self, idom: Dict[NodeId, NodeId], root: NodeId):
        self.root = root
        self.idom = dict(idom)
        self._children: Dict[NodeId, List[NodeId]] = {node: [] for node in idom}
        for node, parent in idom.items():
            if node != root:
                self._children[parent].append(node)
        self._tin: Dict[NodeId, int] = {}
        self._tout: Dict[NodeId, int] = {}
        self._depth: Dict[NodeId, int] = {}
        self._number()

    def _number(self) -> None:
        clock = 0
        stack: List[tuple] = [(self.root, 0, False)]
        while stack:
            node, depth, closing = stack.pop()
            if closing:
                self._tout[node] = clock
                clock += 1
                continue
            self._tin[node] = clock
            clock += 1
            self._depth[node] = depth
            stack.append((node, depth, True))
            for child in reversed(self._children[node]):
                stack.append((child, depth + 1, False))

    # ------------------------------------------------------------------
    def parent(self, node: NodeId) -> Optional[NodeId]:
        """The immediate dominator of ``node`` (None for the root)."""
        if node == self.root:
            return None
        return self.idom[node]

    def children(self, node: NodeId) -> List[NodeId]:
        return list(self._children[node])

    def depth(self, node: NodeId) -> int:
        """Distance from the root (root has depth 0)."""
        return self._depth[node]

    def dominates(self, a: NodeId, b: NodeId) -> bool:
        """True iff ``a`` dominates ``b`` (every node dominates itself)."""
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def strictly_dominates(self, a: NodeId, b: NodeId) -> bool:
        return a != b and self.dominates(a, b)

    def preorder(self) -> Iterator[NodeId]:
        """Nodes in dominator-tree preorder (parents before children)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            for child in reversed(self._children[node]):
                stack.append(child)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.idom

    def __len__(self) -> int:
        return len(self.idom)


def dominator_tree(cfg: CFG, algorithm: str = "iterative") -> DominatorTree:
    """The dominator tree of ``cfg`` rooted at ``cfg.start``.

    ``algorithm`` selects the idom computation: ``"iterative"``
    (Cooper-Harvey-Kennedy) or ``"lt"`` (Lengauer-Tarjan).
    """
    idom = _compute_idoms(cfg, algorithm)
    return DominatorTree(idom, cfg.start)


def postdominator_tree(cfg: CFG, algorithm: str = "iterative") -> DominatorTree:
    """The postdominator tree of ``cfg`` rooted at ``cfg.end``.

    Computed as the dominator tree of the reverse graph; node ids are shared
    with ``cfg``.
    """
    rev = cfg.reversed()
    idom = _compute_idoms(rev, algorithm)
    return DominatorTree(idom, rev.start)


def _compute_idoms(cfg: CFG, algorithm: str) -> Dict[NodeId, NodeId]:
    if algorithm == "iterative":
        from repro.dominance.iterative import immediate_dominators

        return immediate_dominators(cfg)
    if algorithm == "lt":
        from repro.dominance.lengauer_tarjan import lengauer_tarjan

        return lengauer_tarjan(cfg)
    raise ValueError(f"unknown dominator algorithm {algorithm!r}")
