"""Dominance substrate: dominators, postdominators, frontiers.

Two independent immediate-dominator algorithms are provided:

* :func:`repro.dominance.iterative.immediate_dominators` -- the
  Cooper-Harvey-Kennedy data-flow formulation (simple, robust);
* :func:`repro.dominance.lengauer_tarjan.lengauer_tarjan` -- the classic
  near-linear algorithm the paper benchmarks its cycle-equivalence algorithm
  against ([LT79]).

They are cross-checked in the test suite.  On top of immediate dominators the
package offers :class:`~repro.dominance.tree.DominatorTree` (O(1) dominance
queries), dominance frontiers and iterated dominance frontiers (the Cytron et
al. SSA substrate), postdominance via the reverse graph, and the PST-based
divide-and-conquer dominator computation from §6.3 of the paper.
"""

from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.dominance.tree import DominatorTree, dominator_tree, postdominator_tree
from repro.dominance.frontier import (
    dominance_frontiers,
    iterated_dominance_frontier,
    postdominance_frontiers,
)
from repro.dominance.pst_dominators import pst_immediate_dominators

__all__ = [
    "pst_immediate_dominators",
    "immediate_dominators",
    "lengauer_tarjan",
    "DominatorTree",
    "dominator_tree",
    "postdominator_tree",
    "dominance_frontiers",
    "iterated_dominance_frontier",
    "postdominance_frontiers",
]
