"""Divide-and-conquer dominator computation via the PST (§6.3).

The paper sketches the approach: "first, build the dominator tree of each
SESE region, and then piece together the local trees using global structure
(nesting) information in the PST."

The stitching rule rests on two facts about a SESE region ``(a, b)``:

* every path from ``start`` into the region passes through ``a``, so the
  immediate dominator of a node whose local idom is the region's synthetic
  entry is ``a.source``;
* every path leaving the region passes through ``b``, so when a node's
  idom in the parent's *collapsed* graph is a child summary node, its real
  idom is that child's ``exit.source`` (the last real node every path out
  of the child traverses).

Each real node appears in exactly one collapsed region graph (its innermost
region's), so one local dominator computation per region determines every
idom.  The local computations are independent -- this is also the shape a
parallel or incremental implementation would exploit.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cfg.graph import CFG, NodeId
from repro.core.pst import REGION_ENTRY, ProgramStructureTree
from repro.kernel.session import session_for
from repro.dominance.iterative import immediate_dominators


def pst_immediate_dominators(
    cfg: CFG, pst: Optional[ProgramStructureTree] = None
) -> Dict[NodeId, NodeId]:
    """Immediate dominators computed region by region.

    Same contract as :func:`repro.dominance.iterative.immediate_dominators`:
    ``idom[start] == start``.  The test suite asserts equality with both
    whole-graph algorithms.

    Unlike those, this decomposition needs the full Definition 1 invariants
    (the PST does), so degenerate CFGs raise
    :class:`~repro.cfg.graph.InvalidCFGError` during PST construction.
    """
    if pst is None:
        pst = session_for(cfg).pst()

    idom: Dict[NodeId, NodeId] = {cfg.start: cfg.start}
    by_id = {r.region_id: r for r in pst.canonical_regions()}
    for region in pst.regions():
        sub, _ = pst.collapsed_cfg(region)
        local = immediate_dominators(sub)
        own = set(region.own_nodes)

        def resolve(node: NodeId) -> NodeId:
            """Map a collapsed-graph idom back to a real CFG node."""
            if node == REGION_ENTRY:
                assert region.entry is not None
                return region.entry.source
            if isinstance(node, tuple) and len(node) == 2 and node[0] == "region":
                child = by_id[node[1]]
                assert child.exit is not None
                return child.exit.source
            return node

        for node in own:
            if node == cfg.start:
                continue
            idom[node] = resolve(local[node])
    return idom
