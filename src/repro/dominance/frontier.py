"""Dominance frontiers and iterated dominance frontiers (Cytron et al. 1991).

These are the substrate for classic SSA construction and -- via the reverse
graph -- for Ferrante-Ottenstein-Warren control dependence.  The paper's §6.1
points out that dominance frontiers can be Θ(N²) in total size (nested
repeat-until loops); the PST-based φ-placement in :mod:`repro.ssa.pst_phi`
avoids that blowup, and ``benchmarks/bench_perf_ssa_worstcase.py`` measures
the difference.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.cfg.graph import CFG, NodeId
from repro.dominance.tree import DominatorTree


def dominance_frontiers(cfg: CFG, dtree: DominatorTree) -> Dict[NodeId, Set[NodeId]]:
    """DF(n) for every reachable node, by the Cytron et al. join-walk.

    For each join node ``m`` and each CFG predecessor ``p`` of ``m``, every
    node on the dominator-tree path from ``p`` up to (but excluding)
    ``idom(m)`` has ``m`` in its frontier.
    """
    df: Dict[NodeId, Set[NodeId]] = {node: set() for node in dtree.idom}
    for node in dtree.idom:
        idom_n = dtree.parent(node)
        for pred in set(cfg.predecessors(node)):
            if pred not in dtree.idom:
                continue  # unreachable predecessor
            runner = pred
            # Walk up from the predecessor to (exclusive) idom(node); every
            # node passed dominates a predecessor of `node` but not `node`
            # strictly.  For single-predecessor nodes idom(node) == pred and
            # the walk is empty, so no join test is needed up front.
            while runner != idom_n:
                df[runner].add(node)
                if runner == dtree.root:
                    break
                runner = dtree.parent(runner)
    return df


def iterated_dominance_frontier(
    df: Dict[NodeId, Set[NodeId]], seeds: Iterable[NodeId]
) -> Set[NodeId]:
    """DF+(seeds): the limit of DF(S), DF(S ∪ DF(S)), ... (worklist form)."""
    result: Set[NodeId] = set()
    worklist = [node for node in seeds if node in df]
    enqueued = set(worklist)
    while worklist:
        node = worklist.pop()
        for frontier_node in df[node]:
            if frontier_node not in result:
                result.add(frontier_node)
                if frontier_node not in enqueued:
                    enqueued.add(frontier_node)
                    worklist.append(frontier_node)
    return result


def postdominance_frontiers(cfg: CFG, pdtree: DominatorTree) -> Dict[NodeId, Set[NodeId]]:
    """Postdominance frontiers: dominance frontiers of the reverse graph.

    ``PDF(n)`` is exactly the set of nodes that ``n`` is control dependent on
    (ignoring branch labels); see :mod:`repro.controldep.fow`.
    """
    rev = cfg.reversed()
    return dominance_frontiers(rev, pdtree)
