"""Reference interpreters for MiniLang ASTs and lowered CFGs.

Two independent executable semantics:

* :func:`run_ast` walks the MiniLang AST directly;
* :func:`run_cfg` executes a :class:`~repro.ir.LoweredProcedure` block by
  block, including SSA φ-functions (evaluated simultaneously against the
  incoming edge).

Having both lets the test suite validate *semantics*, not just graph
shapes: lowering must preserve behaviour (AST run == CFG run), SSA
conversion must preserve behaviour (CFG run == SSA run, per-variable
assignment traces included), and constant propagation's claims must hold
on every actual execution.

Semantics: values are 64-bit signed integers with wraparound (random
programs love ``x = x * x`` inside loops; unbounded bignums would make
execution cost explode); variables read before assignment are 0; ``/`` and
``%`` are floor division/modulo with ``x/0 == x%0 == 0``; comparisons and
logical operators yield 0/1; calls are a fixed deterministic pure function
of the callee name and arguments (there are no user-defined call targets
in MiniLang bodies).  :func:`apply_op` is the single definition of these
semantics -- the constant-propagation folder delegates to it, which is what
makes the analysis-soundness tests meaningful.  Execution is bounded by
``fuel`` (statements executed); exceeding it raises :class:`FuelExhausted`
so tests can skip diverging random programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cfg.graph import Edge, NodeId
from repro.ir import Assign, Branch, Copy, LoweredProcedure, Phi, Ret
from repro.lang import astnodes as ast


class FuelExhausted(RuntimeError):
    """Raised when an execution exceeds its statement budget."""


class MiniLangRuntimeError(RuntimeError):
    """Raised on malformed programs (e.g. a branch with no matching edge)."""


@dataclass
class Trace:
    """The observable outcome of one execution."""

    returned: Optional[int]
    env: Dict[str, int]
    # per *base* variable: the sequence of values assigned by ordinary
    # assignments (φs and parameter/undef initializers excluded), the
    # observable that SSA conversion must preserve exactly.
    assignments: Dict[str, List[int]] = field(default_factory=dict)
    steps: int = 0

    def record(self, name: str, value: int) -> None:
        base = name.split("#", 1)[0]
        self.assignments.setdefault(base, []).append(value)


def builtin_call(name: str, args: List[int]) -> int:
    """The fixed pure semantics of calls (shared by both interpreters)."""
    value = len(name) * 1000003
    for arg in args:
        value = (value * 31 + arg) % 1_000_003
    return value


def eval_expr(expr: ast.Expr, env: Dict[str, int]) -> int:
    if isinstance(expr, ast.Num):
        return expr.value
    if isinstance(expr, ast.Var):
        return env.get(expr.name, 0)
    if isinstance(expr, ast.BinOp):
        return apply_op(expr.op, eval_expr(expr.left, env), eval_expr(expr.right, env))
    if isinstance(expr, ast.Call):
        return builtin_call(expr.name, [eval_expr(a, env) for a in expr.args])
    raise MiniLangRuntimeError(f"unknown expression {expr!r}")


_WORD = 1 << 64
_SIGN = 1 << 63


def wrap(value: int) -> int:
    """Reduce to a 64-bit signed integer (two's-complement wraparound)."""
    return (value + _SIGN) % _WORD - _SIGN


def apply_op(op: str, a: int, b: int) -> int:
    if op == "+":
        return wrap(a + b)
    if op == "-":
        return wrap(a - b)
    if op == "*":
        return wrap(a * b)
    if op == "/":
        return 0 if b == 0 else wrap(a // b)
    if op == "%":
        return 0 if b == 0 else wrap(a % b)
    if op == "<":
        return int(a < b)
    if op == "<=":
        return int(a <= b)
    if op == ">":
        return int(a > b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    raise MiniLangRuntimeError(f"unknown operator {op!r}")


# ----------------------------------------------------------------------
# AST interpreter
# ----------------------------------------------------------------------

class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Optional[int]):
        self.value = value


class _Goto(Exception):
    def __init__(self, label: str):
        self.label = label


def run_ast(procedure: ast.Procedure, args: List[int], fuel: int = 100_000) -> Trace:
    """Execute a MiniLang procedure AST."""
    env: Dict[str, int] = {}
    trace = Trace(returned=None, env=env)
    for name, value in zip(procedure.params, list(args) + [0] * len(procedure.params)):
        env[name] = value

    # `goto` needs non-local transfer: restart execution of the body from
    # the target label whenever a _Goto escapes.  Structured statements are
    # re-entered in "seek" mode that skips execution until the label is hit.
    try:
        _run_block(procedure.body, env, trace, fuel, seek=None)
    except _Return as ret:
        trace.returned = ret.value
    except _Goto as jump:
        label = jump.label
        while True:
            try:
                _run_block(procedure.body, env, trace, fuel, seek=label)
                break
            except _Goto as again:
                label = again.label
            except _Return as ret:
                trace.returned = ret.value
                break
    return trace


def _tick(trace: Trace, fuel: int) -> None:
    trace.steps += 1
    if trace.steps > fuel:
        raise FuelExhausted(f"exceeded {fuel} steps")


def _run_block(block: ast.Block, env, trace, fuel, seek: Optional[str]) -> Optional[str]:
    """Execute a block; in seek mode skip statements until Label(seek).

    Returns the still-pending seek label if it was not found in this block
    (the caller keeps seeking), or None once normal execution resumed.
    """
    for statement in block.statements:
        if seek is not None:
            seek = _seek_into(statement, env, trace, fuel, seek)
            continue
        _run_statement(statement, env, trace, fuel)
    return seek


def _seek_into(statement: ast.Stmt, env, trace, fuel, seek: str) -> Optional[str]:
    """Skip forward looking for a label; descend into compound statements."""
    if isinstance(statement, ast.Label):
        return None if statement.name == seek else seek
    if isinstance(statement, ast.If):
        for arm in (statement.then, statement.els):
            if arm is not None and _block_contains_label(arm, seek):
                remaining = _run_block(arm, env, trace, fuel, seek)
                return remaining
        return seek
    if isinstance(statement, (ast.While, ast.Repeat, ast.For)):
        body = statement.body
        if _block_contains_label(body, seek):
            # resume inside the loop: execute the rest of this iteration,
            # then continue looping normally
            try:
                remaining = _run_block(body, env, trace, fuel, seek)
                if remaining is None:
                    _continue_loop(statement, env, trace, fuel)
                return remaining
            except _Break:
                return None
            except _Continue:
                _continue_loop(statement, env, trace, fuel)
                return None
        return seek
    if isinstance(statement, ast.Switch):
        for _, arm in statement.cases:
            if _block_contains_label(arm, seek):
                return _run_block(arm, env, trace, fuel, seek)
        if statement.default is not None and _block_contains_label(statement.default, seek):
            return _run_block(statement.default, env, trace, fuel, seek)
        return seek
    return seek


def _block_contains_label(block: ast.Block, label: str) -> bool:
    for statement in block.statements:
        if isinstance(statement, ast.Label) and statement.name == label:
            return True
        for attr in ("then", "els", "body", "default"):
            sub = getattr(statement, attr, None)
            if isinstance(sub, ast.Block) and _block_contains_label(sub, label):
                return True
        for _, sub in getattr(statement, "cases", []):
            if _block_contains_label(sub, label):
                return True
    return False


def _continue_loop(statement: ast.Stmt, env, trace, fuel) -> None:
    """After resuming mid-iteration, run the loop's remaining iterations."""
    if isinstance(statement, ast.While):
        _run_while(statement, env, trace, fuel)
    elif isinstance(statement, ast.Repeat):
        if not eval_expr(statement.cond, env):
            _run_repeat(statement, env, trace, fuel)
    elif isinstance(statement, ast.For):
        value = env.get(statement.var, 0) + 1
        env[statement.var] = value
        trace.record(statement.var, value)
        _run_for_from_current(statement, env, trace, fuel)


def _run_statement(statement: ast.Stmt, env, trace, fuel) -> None:
    _tick(trace, fuel)
    if isinstance(statement, ast.Assign):
        value = eval_expr(statement.value, env)
        env[statement.target] = value
        trace.record(statement.target, value)
    elif isinstance(statement, ast.If):
        if eval_expr(statement.cond, env):
            _run_block(statement.then, env, trace, fuel, seek=None)
        elif statement.els is not None:
            _run_block(statement.els, env, trace, fuel, seek=None)
    elif isinstance(statement, ast.While):
        _run_while(statement, env, trace, fuel)
    elif isinstance(statement, ast.Repeat):
        _run_repeat(statement, env, trace, fuel)
    elif isinstance(statement, ast.For):
        value = eval_expr(statement.lo, env)
        env[statement.var] = value
        trace.record(statement.var, value)
        _run_for_from_current(statement, env, trace, fuel)
    elif isinstance(statement, ast.Switch):
        selector = eval_expr(statement.expr, env)
        for value, arm in statement.cases:
            if selector == value:
                _run_block(arm, env, trace, fuel, seek=None)
                return
        if statement.default is not None:
            _run_block(statement.default, env, trace, fuel, seek=None)
    elif isinstance(statement, ast.Break):
        raise _Break()
    elif isinstance(statement, ast.Continue):
        raise _Continue()
    elif isinstance(statement, ast.Goto):
        raise _Goto(statement.label)
    elif isinstance(statement, ast.Label):
        pass
    elif isinstance(statement, ast.Return):
        raise _Return(eval_expr(statement.value, env) if statement.value else None)
    else:
        raise MiniLangRuntimeError(f"unknown statement {statement!r}")


def _run_while(statement: ast.While, env, trace, fuel) -> None:
    while eval_expr(statement.cond, env):
        _tick(trace, fuel)
        try:
            _run_block(statement.body, env, trace, fuel, seek=None)
        except _Break:
            return
        except _Continue:
            continue


def _run_repeat(statement: ast.Repeat, env, trace, fuel) -> None:
    while True:
        _tick(trace, fuel)
        try:
            _run_block(statement.body, env, trace, fuel, seek=None)
        except _Break:
            return
        except _Continue:
            pass
        if eval_expr(statement.cond, env):
            return


def _run_for_from_current(statement: ast.For, env, trace, fuel) -> None:
    while env.get(statement.var, 0) <= eval_expr(statement.hi, env):
        _tick(trace, fuel)
        try:
            _run_block(statement.body, env, trace, fuel, seek=None)
        except _Break:
            return
        except _Continue:
            pass
        value = env.get(statement.var, 0) + 1
        env[statement.var] = value
        trace.record(statement.var, value)


# ----------------------------------------------------------------------
# CFG interpreter
# ----------------------------------------------------------------------

def run_cfg(proc: LoweredProcedure, args: List[int], fuel: int = 100_000, on_block=None) -> Trace:
    """Execute a lowered procedure (φ-functions supported).

    ``on_block(node, env)``, if given, is invoked at every block entry
    (before the block's statements run) -- the hook dataflow-soundness
    tests use to compare analysis claims against live environments.
    """
    env: Dict[str, int] = {}
    trace = Trace(returned=None, env=env)
    params = list(args)
    node: NodeId = proc.cfg.start
    entered_by: Optional[Edge] = None

    while True:
        if on_block is not None:
            on_block(node, env)
        statements = proc.blocks.get(node, [])
        # φs first, evaluated simultaneously against the entering edge
        phis = [s for s in statements if isinstance(s, Phi)]
        if phis:
            values = {}
            for phi in phis:
                if entered_by not in phi.args:
                    raise MiniLangRuntimeError(
                        f"φ {phi.target} has no argument for entering edge {entered_by!r}"
                    )
                values[phi.target] = env.get(phi.args[entered_by], 0)
            env.update(values)
        selector: Optional[int] = None
        for stmt in statements:
            if isinstance(stmt, Phi):
                continue
            _tick(trace, fuel)
            if isinstance(stmt, Copy):
                env[stmt.target] = env.get(stmt.source, 0)  # transparent move
            elif isinstance(stmt, Assign):
                value = _eval_assign(stmt, env, params)
                env[stmt.target] = value
                if stmt.expr is not None or (not stmt.uses and _is_int(stmt.text)):
                    trace.record(stmt.target, value)
            elif isinstance(stmt, Branch):
                if stmt.expr is None:
                    raise MiniLangRuntimeError(f"branch without expression in {node!r}")
                selector = eval_expr(stmt.expr, env)
            elif isinstance(stmt, Ret):
                trace.returned = (
                    eval_expr(stmt.expr, env) if stmt.expr is not None else None
                )
                return trace

        if node == proc.cfg.end:
            return trace
        entered_by = _pick_edge(proc, node, selector)
        node = entered_by.target


def _is_int(text: str) -> bool:
    try:
        int(text)
        return True
    except (TypeError, ValueError):
        return False


def _eval_assign(stmt: Assign, env: Dict[str, int], params: List[int]) -> int:
    if stmt.expr is not None:
        return eval_expr(stmt.expr, env)
    if stmt.text == "param":
        return params.pop(0) if params else 0
    if stmt.text == "undef":
        return 0
    if _is_int(stmt.text):
        return int(stmt.text)
    # opaque hand-written statement: hash of its uses, deterministic
    return builtin_call(stmt.text, [env.get(u, 0) for u in stmt.uses])


def _pick_edge(proc: LoweredProcedure, node: NodeId, selector: Optional[int]) -> Edge:
    edges = proc.cfg.out_edges(node)
    if len(edges) == 1 and edges[0].label is None:
        return edges[0]
    if selector is None:
        if len(edges) == 1:
            return edges[0]
        raise MiniLangRuntimeError(f"multi-way block {node!r} without a branch statement")
    labels = {edge.label: edge for edge in edges}
    if set(labels) <= {"T", "F"}:
        return labels["T"] if selector else labels["F"]
    key = str(selector)
    if key in labels:
        return labels[key]
    if "default" in labels:
        return labels["default"]
    raise MiniLangRuntimeError(f"no edge for selector {selector!r} at {node!r}")
