"""Allen-Cocke interval partitioning ([AC76]; see also [Ken81], [RP86]).

An *interval* I(h) with header ``h`` is the maximal single-entry subgraph
obtained by repeatedly absorbing nodes all of whose predecessors already
lie in the interval.  Collapsing every interval to its header yields the
first *derived graph*; iterating produces the derived sequence, whose limit
is a single node exactly when the flowgraph is reducible -- providing an
independent oracle for :func:`repro.cfg.reducibility.is_reducible` (the
T1/T2 characterization), which the tests exploit.

The paper positions the PST as an alternative hierarchical decomposition
to intervals for elimination-style dataflow (§6.2, citing Allen & Cocke
and Graham & Wegman), and notes Theorem 10's consequence that unstructured
SESE regions of a reducible graph can still be handled by interval methods.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cfg.graph import CFG, NodeId


class Interval:
    """One interval: a header plus its absorbed nodes, in interval order."""

    __slots__ = ("header", "nodes")

    def __init__(self, header: NodeId):
        self.header = header
        self.nodes: List[NodeId] = [header]

    def __contains__(self, node: NodeId) -> bool:
        return node in set(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Interval({self.header!r}, {len(self.nodes)} nodes)"


def interval_partition(cfg: CFG, root: Optional[NodeId] = None) -> List[Interval]:
    """Partition the nodes reachable from ``root`` into intervals.

    Nodes inside each interval are listed in *interval order* (every
    non-header node appears after all of its intra-interval predecessors),
    which the interval dataflow solver relies on.
    """
    root = cfg.start if root is None else root
    interval_of: Dict[NodeId, Interval] = {}
    intervals: List[Interval] = []
    header_worklist: List[NodeId] = [root]
    queued = {root}

    while header_worklist:
        header = header_worklist.pop(0)
        if header in interval_of:
            continue
        interval = Interval(header)
        interval_of[header] = interval
        members = {header}
        changed = True
        while changed:
            changed = False
            for node in list(members):
                for succ in cfg.successors(node):
                    if succ in members or succ in interval_of or succ == root:
                        continue
                    # Self-loops do not block absorption (they are the T1
                    # case: a one-node cycle is internal wherever the node
                    # lands); the dataflow solver applies a per-node closure
                    # for them.
                    preds = [p for p in cfg.predecessors(succ) if p != succ]
                    if preds and all(p in members for p in preds):
                        members.add(succ)
                        interval.nodes.append(succ)
                        interval_of[succ] = interval
                        changed = True
        intervals.append(interval)
        # new headers: nodes outside any interval with a predecessor inside
        for node in interval.nodes:
            for succ in cfg.successors(node):
                if succ not in interval_of and succ not in queued:
                    queued.add(succ)
                    header_worklist.append(succ)
    return intervals


def derived_graph(cfg: CFG, intervals: List[Interval], root: Optional[NodeId] = None) -> CFG:
    """Collapse each interval to its header; one edge per crossing pair.

    Every inter-interval edge necessarily targets a header (that is what
    makes the partition single-entry), so the derived graph simply connects
    headers.  Intra-interval edges -- including back edges to the own
    header -- are summarized away.
    """
    root = cfg.start if root is None else root
    interval_of: Dict[NodeId, Interval] = {}
    for interval in intervals:
        for node in interval.nodes:
            interval_of[node] = interval
    out = CFG(name=f"{cfg.name}.derived")
    out.start = interval_of[root].header if root in interval_of else root
    for interval in intervals:
        out.add_node(interval.header)
    seen = set()
    for edge in cfg.edges:
        if edge.source not in interval_of or edge.target not in interval_of:
            continue
        src = interval_of[edge.source]
        dst = interval_of[edge.target]
        if src is dst:
            continue
        pair = (src.header, dst.header)
        if pair not in seen:
            seen.add(pair)
            out.add_edge(*pair)
    return out


def derived_sequence(cfg: CFG, root: Optional[NodeId] = None, limit: int = 10_000) -> List[CFG]:
    """G = G0, G1, ... until the graph stops shrinking (the limit graph)."""
    root = cfg.start if root is None else root
    sequence = [cfg]
    current = cfg
    for _ in range(limit):
        intervals = interval_partition(current, root)
        nxt = derived_graph(current, intervals, root)
        if nxt.num_nodes == current.num_nodes:
            return sequence
        root = nxt.start
        sequence.append(nxt)
        current = nxt
    raise RuntimeError("derived sequence did not converge")


def is_reducible_by_intervals(cfg: CFG, root: Optional[NodeId] = None) -> bool:
    """Reducibility via the derived-sequence limit (Allen-Cocke/Hecht)."""
    return derived_sequence(cfg, root)[-1].num_nodes == 1
