"""Reducibility testing by T1/T2 interval collapse (Hecht & Ullman).

A flowgraph is *reducible* iff it collapses to a single node under repeated
application of:

* **T1** -- remove a self-loop, and
* **T2** -- merge a node with its unique predecessor.

Theorem 10 of the paper states that every SESE region of a reducible CFG is
itself reducible; the property tests exercise that claim through this module.

The implementation works on a compressed simple-graph form (parallel edges
collapse to one) because parallel edges are irrelevant to reducibility, and
uses a worklist so that typical graphs collapse in near-linear time.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.cfg.graph import CFG, NodeId


def is_reducible(cfg: CFG, entry: Optional[NodeId] = None) -> bool:
    """True iff ``cfg`` (viewed from ``entry``, default start) is reducible."""
    entry = cfg.start if entry is None else entry

    # Build simple-graph adjacency restricted to nodes reachable from entry.
    succs: Dict[NodeId, Set[NodeId]] = {}
    preds: Dict[NodeId, Set[NodeId]] = {}
    stack = [entry]
    seen: Set[NodeId] = {entry}
    while stack:
        node = stack.pop()
        succs.setdefault(node, set())
        preds.setdefault(node, set())
        for nxt in cfg.successors(node):
            succs.setdefault(nxt, set())
            preds.setdefault(nxt, set())
            succs[node].add(nxt)
            preds[nxt].add(node)
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)

    worklist = list(succs.keys())
    alive = set(succs.keys())
    while worklist:
        node = worklist.pop()
        if node not in alive:
            continue
        # T1: self-loop removal.
        if node in succs[node]:
            succs[node].discard(node)
            preds[node].discard(node)
            worklist.append(node)
            continue
        # T2: merge node into its unique predecessor.
        if node != entry and len(preds[node]) == 1:
            (parent,) = preds[node]
            for nxt in succs[node]:
                preds[nxt].discard(node)
                if nxt != node:
                    succs[parent].add(nxt)
                    preds[nxt].add(parent)
            succs[parent].discard(node)
            alive.discard(node)
            del succs[node]
            del preds[node]
            worklist.append(parent)
            # The parent's successors gained edges; revisit them.
            worklist.extend(succs[parent])
    return len(alive) == 1


def natural_loop_backedges(cfg: CFG) -> Set[NodeId]:
    """Targets of retreating edges whose target dominates their source.

    For reducible graphs these are exactly the natural-loop headers.  Used by
    the region-kind classifier to recognize loop regions.
    """
    from repro.dominance.iterative import immediate_dominators

    idom = immediate_dominators(cfg)

    def dominates(a: NodeId, b: NodeId) -> bool:
        node = b
        while True:
            if node == a:
                return True
            parent = idom.get(node)
            if parent is None or parent == node:
                return False
            node = parent

    headers: Set[NodeId] = set()
    for edge in cfg.edges:
        if dominates(edge.target, edge.source):
            headers.add(edge.target)
    return headers
