"""Validation of the CFG invariants from Definition 1 of the paper.

A valid CFG has distinguished ``start`` and ``end`` nodes, ``start`` has no
predecessors, ``end`` has no successors, and every node occurs on some path
from ``start`` to ``end``.  The cycle-equivalence algorithm *requires* these
invariants (they make ``G + (end -> start)`` strongly connected), so the
library checks them eagerly and reports precise diagnostics.

**Degenerate inputs raise exactly one exception type.**  Every analysis
entry point in the library reports a degenerate or malformed graph -- a
single-node graph, ``start == end``, a node that cannot reach ``end``, an
unset or missing start node -- by raising
:class:`~repro.cfg.graph.InvalidCFGError` (a ``ValueError``), never a raw
``KeyError`` or ``AssertionError``.  Definition-1 consumers (SESE regions,
the PST, control regions, control dependence) validate the full invariants;
rooted-graph algorithms (the dominator computations) deliberately accept
any graph with a reachable root and use :func:`require_root` to funnel the
missing-root case into the same type.  ``tests/fuzz/test_degenerate.py``
pins this contract for every entry point.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cfg.graph import CFG, InvalidCFGError, NodeId


def check_cfg(cfg: CFG) -> List[str]:
    """Return a list of human-readable violations (empty list means valid)."""
    problems: List[str] = []
    if cfg.start is None:
        problems.append("start node is not set")
    elif not cfg.has_node(cfg.start):
        problems.append(f"start node {cfg.start!r} is not in the graph")
    if cfg.end is None:
        problems.append("end node is not set")
    elif not cfg.has_node(cfg.end):
        problems.append(f"end node {cfg.end!r} is not in the graph")
    if problems:
        return problems

    if cfg.start == cfg.end:
        problems.append("start and end must be distinct nodes")
    if cfg.in_degree(cfg.start) > 0:
        problems.append(f"start node {cfg.start!r} has predecessors")
    if cfg.out_degree(cfg.end) > 0:
        problems.append(f"end node {cfg.end!r} has successors")

    # Reachability over the shared CSR snapshot (bytearray marks instead of
    # NodeId hash sets); node_ids is insertion order, so diagnostics come
    # out in the same order as the object-path traversals did.
    from repro.kernel.registry import shared_frozen

    frozen = shared_frozen(cfg)
    from_start = _reach(frozen.num_nodes, frozen.succ_off, frozen.succ_dst, frozen.start)
    to_end = _reach(frozen.num_nodes, frozen.pred_off, frozen.pred_src, frozen.end)
    if 0 in from_start or 0 in to_end:
        for i, node in enumerate(frozen.node_ids):
            if not from_start[i]:
                problems.append(f"node {node!r} is unreachable from start")
            elif not to_end[i]:
                problems.append(f"node {node!r} cannot reach end")
    return problems


def _reach(n: int, off: List[int], dst: List[int], root: int) -> bytearray:
    """Nodes reachable from ``root`` following the given CSR rows."""
    seen = bytearray(n)
    seen[root] = 1
    stack = [root]
    pop = stack.pop
    push = stack.append
    while stack:
        node = pop()
        for t in dst[off[node] : off[node + 1]]:
            if not seen[t]:
                seen[t] = 1
                push(t)
    return seen


def validate_cfg(cfg: CFG) -> CFG:
    """Raise :class:`InvalidCFGError` if ``cfg`` violates Definition 1."""
    problems = check_cfg(cfg)
    if problems:
        raise InvalidCFGError(
            f"invalid CFG {cfg.name!r}: " + "; ".join(problems)
        )
    return cfg


def is_valid_cfg(cfg: CFG) -> bool:
    """True iff ``cfg`` satisfies Definition 1."""
    return not check_cfg(cfg)


def require_root(cfg: CFG, root: Optional[NodeId], purpose: str) -> NodeId:
    """The root for a rooted-graph algorithm, or :class:`InvalidCFGError`.

    Algorithms that work on *any* rooted flowgraph (the dominator
    computations) accept degenerate CFGs -- a single node, ``start == end``,
    nodes that cannot reach ``end`` -- because dominance only needs a root.
    What they cannot tolerate is a missing root; this funnels that case into
    the library's single exception type instead of a raw ``KeyError``.
    """
    if root is None:
        raise InvalidCFGError(
            f"{purpose} requires a root node, but none was given and the "
            "CFG's start node is not set"
        )
    if not cfg.has_node(root):
        raise InvalidCFGError(f"{purpose} root {root!r} is not a node of the graph")
    return root
