"""Graphviz DOT export for CFGs and PSTs (text only; no graphviz dependency)."""

from __future__ import annotations

from typing import Optional

from repro.cfg.graph import CFG


def _quote(value: object) -> str:
    text = str(value)
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def cfg_to_dot(cfg: CFG, title: Optional[str] = None) -> str:
    """Render a CFG as DOT text; start/end are drawn as double circles."""
    lines = [f"digraph {_quote(title or cfg.name)} {{"]
    lines.append("  node [shape=box, fontname=monospace];")
    for node in cfg.nodes:
        attrs = ""
        if node == cfg.start or node == cfg.end:
            attrs = " [shape=doublecircle]"
        lines.append(f"  {_quote(node)}{attrs};")
    for edge in cfg.edges:
        label = f" [label={_quote(edge.label)}]" if edge.label is not None else ""
        lines.append(f"  {_quote(edge.source)} -> {_quote(edge.target)}{label};")
    lines.append("}")
    return "\n".join(lines) + "\n"


def pst_to_dot(pst, title: Optional[str] = None) -> str:
    """Render a :class:`~repro.core.pst.ProgramStructureTree` as DOT text."""
    lines = [f"digraph {_quote(title or 'pst')} {{"]
    lines.append("  node [shape=ellipse, fontname=monospace];")
    for region in pst.regions():
        lines.append(f"  {_quote(region.region_id)} [label={_quote(region.describe())}];")
    for region in pst.regions():
        for child in region.children:
            lines.append(f"  {_quote(region.region_id)} -> {_quote(child.region_id)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
