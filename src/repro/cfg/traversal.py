"""Deterministic graph traversals.

All traversals are iterative (no recursion) so that the library handles the
deep graphs produced by the worst-case benchmark generators, and all follow
adjacency-list insertion order so repeated runs visit edges identically --
a property the two-pass PST construction depends on.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Set, Tuple

from repro.cfg.graph import CFG, Edge, NodeId


def dfs_preorder(cfg: CFG, root: Optional[NodeId] = None) -> List[NodeId]:
    """Nodes in depth-first preorder from ``root`` (default: ``cfg.start``)."""
    root = cfg.start if root is None else root
    seen: Set[NodeId] = set()
    order: List[NodeId] = []
    stack: List[NodeId] = [root]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        order.append(node)
        # reversed so that the first adjacency-list edge is explored first
        for edge in reversed(cfg.iter_out_edges(node)):
            if edge.target not in seen:
                stack.append(edge.target)
    return order


def dfs_postorder(cfg: CFG, root: Optional[NodeId] = None) -> List[NodeId]:
    """Nodes in depth-first postorder from ``root`` (default: ``cfg.start``)."""
    root = cfg.start if root is None else root
    seen: Set[NodeId] = {root}
    order: List[NodeId] = []
    # stack holds (node, iterator over out-edges)
    stack: List[Tuple[NodeId, Iterator[Edge]]] = [(root, iter(cfg.iter_out_edges(root)))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for edge in it:
            if edge.target not in seen:
                seen.add(edge.target)
                stack.append((edge.target, iter(cfg.iter_out_edges(edge.target))))
                advanced = True
                break
        if not advanced:
            order.append(node)
            stack.pop()
    return order


def reverse_postorder(cfg: CFG, root: Optional[NodeId] = None) -> List[NodeId]:
    """Reverse postorder (a topological order on the acyclic part)."""
    order = dfs_postorder(cfg, root)
    order.reverse()
    return order


def dfs_edges(
    cfg: CFG,
    root: Optional[NodeId] = None,
    on_edge: Optional[Callable[[Edge], None]] = None,
) -> List[Edge]:
    """Every edge reachable from ``root``, in deterministic DFS visit order.

    An edge is "visited" when its source node is expanded, whether or not the
    target was already discovered; each edge is reported exactly once.  This
    is the traversal order used by canonical-SESE-region discovery (§3.6 of
    the paper): within a cycle-equivalence class, it coincides with the
    dominance order of the class's edges.
    """
    root = cfg.start if root is None else root
    seen: Set[NodeId] = {root}
    visited: List[Edge] = []
    stack: List[Tuple[NodeId, Iterator[Edge]]] = [(root, iter(cfg.iter_out_edges(root)))]
    while stack:
        node, it = stack[-1]
        advanced = False
        for edge in it:
            visited.append(edge)
            if on_edge is not None:
                on_edge(edge)
            if edge.target not in seen:
                seen.add(edge.target)
                stack.append((edge.target, iter(cfg.iter_out_edges(edge.target))))
                advanced = True
                break
        if not advanced:
            stack.pop()
    return visited


def reachable_from(cfg: CFG, root: Optional[NodeId] = None) -> Set[NodeId]:
    """The set of nodes reachable from ``root`` (default: ``cfg.start``)."""
    return set(dfs_preorder(cfg, root))


def reaches(cfg: CFG, sink: Optional[NodeId] = None) -> Set[NodeId]:
    """The set of nodes from which ``sink`` (default: ``cfg.end``) is reachable."""
    sink = cfg.end if sink is None else sink
    seen: Set[NodeId] = {sink}
    stack: List[NodeId] = [sink]
    while stack:
        node = stack.pop()
        for edge in cfg.iter_in_edges(node):
            if edge.source not in seen:
                seen.add(edge.source)
                stack.append(edge.source)
    return seen


def dfs_numbering(cfg: CFG, root: Optional[NodeId] = None) -> Dict[NodeId, int]:
    """Preorder DFS numbers (0-based) for reachable nodes."""
    return {node: i for i, node in enumerate(dfs_preorder(cfg, root))}
