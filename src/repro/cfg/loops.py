"""Natural loops and the loop-nesting forest.

A *natural loop* is induced by a backedge ``latch -> header`` whose header
dominates the latch: its body is everything that reaches the latch without
passing through the header.  Loops with a shared header are merged (the
usual convention), and bodies of distinct headers are either disjoint or
nested in reducible graphs, giving a forest.

This substrate complements the PST: the region-kind classifier recognizes
LOOP regions structurally, and the tests cross-check that every natural
loop of a reducible graph is contained in some PST loop region boundary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cfg.graph import CFG, NodeId
from repro.dominance.tree import DominatorTree, dominator_tree


class NaturalLoop:
    """One natural loop: header, latches, and body (header included)."""

    __slots__ = ("header", "latches", "body", "parent", "children")

    def __init__(self, header: NodeId):
        self.header = header
        self.latches: List[NodeId] = []
        self.body: Set[NodeId] = {header}
        self.parent: Optional["NaturalLoop"] = None
        self.children: List["NaturalLoop"] = []

    @property
    def depth(self) -> int:
        depth = 0
        node = self.parent
        while node is not None:
            depth += 1
            node = node.parent
        return depth

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NaturalLoop(header={self.header!r}, |body|={len(self.body)})"


def natural_loops(cfg: CFG, dtree: Optional[DominatorTree] = None) -> List[NaturalLoop]:
    """All natural loops (same-header loops merged), unordered."""
    if dtree is None:
        dtree = dominator_tree(cfg)
    loops: Dict[NodeId, NaturalLoop] = {}
    for edge in cfg.edges:
        if edge.source not in dtree or edge.target not in dtree:
            continue
        if not dtree.dominates(edge.target, edge.source):
            continue  # not a backedge of a natural loop
        loop = loops.setdefault(edge.target, NaturalLoop(edge.target))
        loop.latches.append(edge.source)
        # body: reverse reachability from the latch, stopping at the header
        stack = [edge.source]
        while stack:
            node = stack.pop()
            if node in loop.body:
                continue
            loop.body.add(node)
            for pred in cfg.predecessors(node):
                if pred not in loop.body:
                    stack.append(pred)
    return list(loops.values())


def loop_nest_forest(cfg: CFG, dtree: Optional[DominatorTree] = None) -> List[NaturalLoop]:
    """Top-level loops with parent/children links populated by containment.

    For reducible graphs bodies nest cleanly; for irreducible graphs the
    natural-loop notion is already partial, and this function simply nests
    by body containment (ties broken by size).
    """
    loops = natural_loops(cfg, dtree)
    by_size = sorted(loops, key=lambda l: len(l.body))
    for index, inner in enumerate(by_size):
        for outer in by_size[index + 1 :]:
            if inner is not outer and inner.body <= outer.body:
                inner.parent = outer
                outer.children.append(inner)
                break
    return [loop for loop in loops if loop.parent is None]
