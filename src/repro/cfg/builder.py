"""Convenience constructors for CFGs.

Most tests and examples want to write a CFG down as a list of edges; the
helpers here turn that into a validated :class:`~repro.cfg.graph.CFG`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.cfg.graph import CFG, Edge, NodeId

EdgeSpec = Union[Tuple[NodeId, NodeId], Tuple[NodeId, NodeId, Optional[str]]]


def cfg_from_edges(
    edges: Iterable[EdgeSpec],
    start: NodeId = "start",
    end: NodeId = "end",
    name: str = "cfg",
    validate: bool = True,
) -> CFG:
    """Build a CFG from ``(source, target)`` or ``(source, target, label)`` specs.

    ``start`` and ``end`` are added even if they appear in no edge.  With
    ``validate=True`` (the default) the result is checked against
    Definition 1 and an :class:`InvalidCFGError` is raised on violation.
    """
    cfg = CFG(start=start, end=end, name=name)
    for spec in edges:
        if len(spec) == 2:
            source, target = spec  # type: ignore[misc]
            label = None
        else:
            source, target, label = spec  # type: ignore[misc]
        cfg.add_edge(source, target, label)
    if validate:
        from repro.cfg.validate import validate_cfg

        validate_cfg(cfg)
    return cfg


class CFGBuilder:
    """Incremental CFG builder with auto-generated block names.

    Useful when lowering ASTs or generating synthetic graphs: blocks get
    sequential names (``b0``, ``b1``, ...) and branch edges get consistent
    labels.

    >>> b = CFGBuilder()
    >>> cond = b.block("cond")
    >>> then = b.block()
    >>> b.branch(cond, then, b.end, "T", "F")
    >>> b.goto(then, b.end)
    >>> b.goto(b.start, cond)
    >>> cfg = b.finish()
    >>> cfg.num_nodes
    4
    """

    def __init__(self, name: str = "cfg", start: NodeId = "start", end: NodeId = "end"):
        self.cfg = CFG(start=start, end=end, name=name)
        self._counter = 0

    @property
    def start(self) -> NodeId:
        return self.cfg.start

    @property
    def end(self) -> NodeId:
        return self.cfg.end

    def block(self, name: Optional[NodeId] = None) -> NodeId:
        """Create (or ensure) a block; auto-names it if ``name`` is None."""
        if name is None:
            name = f"b{self._counter}"
            self._counter += 1
        return self.cfg.add_node(name)

    def goto(self, source: NodeId, target: NodeId, label: Optional[str] = None) -> Edge:
        """Add an unconditional edge."""
        return self.cfg.add_edge(source, target, label)

    def branch(
        self,
        source: NodeId,
        true_target: NodeId,
        false_target: NodeId,
        true_label: str = "T",
        false_label: str = "F",
    ) -> Tuple[Edge, Edge]:
        """Add a two-way conditional branch with labelled edges."""
        t = self.cfg.add_edge(source, true_target, true_label)
        f = self.cfg.add_edge(source, false_target, false_label)
        return t, f

    def switch(self, source: NodeId, targets: Sequence[NodeId]) -> List[Edge]:
        """Add an n-way branch; edges are labelled by case index."""
        return [self.cfg.add_edge(source, t, str(i)) for i, t in enumerate(targets)]

    def finish(self, validate: bool = True) -> CFG:
        """Validate (optionally) and return the constructed CFG."""
        if validate:
            from repro.cfg.validate import validate_cfg

            validate_cfg(self.cfg)
        return self.cfg


def linear_chain(length: int, name: str = "chain") -> CFG:
    """A straight-line CFG: start -> n1 -> ... -> n_length -> end."""
    if length < 0:
        raise ValueError("length must be non-negative")
    edges: List[Tuple[NodeId, NodeId]] = []
    prev: NodeId = "start"
    for i in range(length):
        node = f"n{i}"
        edges.append((prev, node))
        prev = node
    edges.append((prev, "end"))
    return cfg_from_edges(edges, name=name)
