"""Core control-flow-graph data structures.

A :class:`CFG` is a directed *multigraph*: parallel edges and self-loops are
legal and occur naturally in block-level CFGs (e.g. a conditional whose two
arms both branch to the same block produces parallel edges; a single-block
loop produces a self-loop).  Because of this, edges are first-class objects
with identity (:class:`Edge`), not bare pairs.

Nodes are arbitrary hashable values (typically strings or ints).  The two
distinguished nodes ``start`` and ``end`` follow Definition 1 of the paper:
``start`` has no predecessors, ``end`` has no successors, and every node lies
on some path from ``start`` to ``end``.  These invariants are *checked* by
:func:`repro.cfg.validate.validate_cfg`, not silently enforced, so partially
built graphs can exist during construction.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ReproError

NodeId = Hashable


class InvalidCFGError(ReproError, ValueError):
    """Raised when a graph violates the CFG invariants of Definition 1.

    Part of the :mod:`repro.errors` taxonomy (rooted at
    :class:`~repro.errors.ReproError`); the ``ValueError`` base is kept for
    backward compatibility with callers that predate the taxonomy.
    """


class Edge:
    """A directed control-flow edge with identity.

    Two edges with the same endpoints are distinct objects; equality and
    hashing are by identity (``eid``), which is what makes parallel edges
    representable.  ``label`` is an optional annotation (e.g. the branch
    direction ``"T"``/``"F"`` of a conditional), used by control-dependence
    computations and DOT export.
    """

    __slots__ = ("eid", "source", "target", "label")

    def __init__(self, eid: int, source: NodeId, target: NodeId, label: Optional[str] = None):
        self.eid = eid
        self.source = source
        self.target = target
        self.label = label

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target

    @property
    def pair(self) -> Tuple[NodeId, NodeId]:
        """The (source, target) endpoints as a tuple."""
        return (self.source, self.target)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lbl = f", label={self.label!r}" if self.label is not None else ""
        return f"Edge(#{self.eid} {self.source!r}->{self.target!r}{lbl})"

    # Equality and hashing are identity-based (the default), which is both
    # the intended semantics (parallel edges are distinct) and much faster
    # than a Python-level __hash__ in the dict-heavy algorithms.

    def __lt__(self, other: "Edge") -> bool:
        return self.eid < other.eid


class CFG:
    """A directed control-flow multigraph with distinguished start/end nodes.

    The graph keeps insertion-ordered adjacency lists so that traversals are
    deterministic, which the PST construction relies on (two DFS passes must
    visit edges in the same order).
    """

    def __init__(self, start: Optional[NodeId] = None, end: Optional[NodeId] = None, name: str = "cfg"):
        self.name = name
        self.start = start
        self.end = end
        self._succs: Dict[NodeId, List[Edge]] = {}
        self._preds: Dict[NodeId, List[Edge]] = {}
        self._edges: List[Edge] = []
        self._next_eid = 0
        self._version = 0
        if start is not None:
            self.add_node(start)
        if end is not None and end != start:
            self.add_node(end)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> NodeId:
        """Add ``node`` if not present; returns the node id."""
        if node not in self._succs:
            self._succs[node] = []
            self._preds[node] = []
            self._version += 1
        return node

    def add_edge(self, source: NodeId, target: NodeId, label: Optional[str] = None) -> Edge:
        """Add a new directed edge; parallel edges and self-loops allowed."""
        self.add_node(source)
        self.add_node(target)
        edge = Edge(self._next_eid, source, target, label)
        self._next_eid += 1
        self._edges.append(edge)
        self._succs[source].append(edge)
        self._preds[target].append(edge)
        self._version += 1
        return edge

    def remove_edge(self, edge: Edge) -> None:
        """Remove ``edge`` from the graph.  O(degree)."""
        self._succs[edge.source].remove(edge)
        self._preds[edge.target].remove(edge)
        self._edges.remove(edge)
        self._version += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges."""
        for edge in list(self._succs[node]):
            self.remove_edge(edge)
        for edge in list(self._preds[node]):
            if edge in self._edges:  # self-loops already removed above
                self.remove_edge(edge)
        del self._succs[node]
        del self._preds[node]
        self._version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[NodeId]:
        return list(self._succs.keys())

    @property
    def edges(self) -> List[Edge]:
        return list(self._edges)

    @property
    def num_nodes(self) -> int:
        return len(self._succs)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def has_node(self, node: NodeId) -> bool:
        return node in self._succs

    def out_edges(self, node: NodeId) -> List[Edge]:
        return list(self._succs[node])

    def in_edges(self, node: NodeId) -> List[Edge]:
        return list(self._preds[node])

    def iter_out_edges(self, node: NodeId) -> Iterable[Edge]:
        """The out-edge list of ``node`` without the defensive copy.

        The returned sequence is the live adjacency list: callers must not
        mutate the graph while iterating it.  Inner loops of the analyses
        use this instead of :meth:`out_edges` to avoid an O(degree)
        allocation per visit.
        """
        return self._succs[node]

    def iter_in_edges(self, node: NodeId) -> Iterable[Edge]:
        """The in-edge list of ``node`` without the defensive copy (live)."""
        return self._preds[node]

    def successors(self, node: NodeId) -> List[NodeId]:
        return [e.target for e in self._succs[node]]

    def predecessors(self, node: NodeId) -> List[NodeId]:
        return [e.source for e in self._preds[node]]

    @property
    def version(self) -> int:
        """A counter bumped on every mutation.

        Snapshots (:class:`repro.kernel.csr.FrozenCFG`) record it to detect
        staleness: a frozen view is valid iff the graph's version still
        equals the one captured at freeze time.
        """
        return self._version

    def out_degree(self, node: NodeId) -> int:
        return len(self._succs[node])

    def in_degree(self, node: NodeId) -> int:
        return len(self._preds[node])

    def find_edges(self, source: NodeId, target: NodeId) -> List[Edge]:
        """All edges from ``source`` to ``target`` (may be several)."""
        return [e for e in self._succs.get(source, []) if e.target == target]

    def edge(self, source: NodeId, target: NodeId) -> Edge:
        """The unique edge from ``source`` to ``target``.

        Raises :class:`KeyError` if there is no such edge or it is ambiguous.
        """
        found = self.find_edges(source, target)
        if len(found) != 1:
            raise KeyError(f"expected exactly one edge {source!r}->{target!r}, found {len(found)}")
        return found[0]

    def __contains__(self, node: NodeId) -> bool:
        return node in self._succs

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._succs)

    def __len__(self) -> int:
        return len(self._succs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CFG({self.name!r}, |V|={self.num_nodes}, |E|={self.num_edges})"

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "CFG":
        """A structural copy; new Edge objects, same node ids and edge order."""
        out = CFG(name=name or self.name)
        out.start = self.start
        out.end = self.end
        for node in self._succs:
            out.add_node(node)
        for edge in self._edges:
            out.add_edge(edge.source, edge.target, edge.label)
        return out

    def reversed(self, name: Optional[str] = None) -> "CFG":
        """The reverse CFG: every edge flipped, start and end exchanged.

        Used for postdominance: postdominators of G are dominators of
        ``G.reversed()``.
        """
        out = CFG(name=name or f"{self.name}.rev")
        out.start = self.end
        out.end = self.start
        for node in self._succs:
            out.add_node(node)
        for edge in self._edges:
            out.add_edge(edge.target, edge.source, edge.label)
        return out

    def edge_split(self, name: Optional[str] = None) -> Tuple["CFG", Dict[Edge, NodeId]]:
        """Split every edge by a fresh node; return (graph, edge -> split node).

        Used to lift node-dominance queries to *edge* dominance: edge ``a``
        dominates edge ``b`` in G iff the split node of ``a`` dominates the
        split node of ``b`` in the edge-split graph.
        """
        out = CFG(name=name or f"{self.name}.split")
        out.start = self.start
        out.end = self.end
        for node in self._succs:
            out.add_node(node)
        mapping: Dict[Edge, NodeId] = {}
        for edge in self._edges:
            mid = ("edge", edge.eid)
            mapping[edge] = mid
            out.add_edge(edge.source, mid, edge.label)
            out.add_edge(mid, edge.target)
        return out, mapping

    def with_return_edge(self) -> Tuple["CFG", Edge]:
        """A copy of G with the cycle-equivalence augmentation edge.

        Returns ``(S, back)`` where ``S = G + (end -> start)`` and ``back`` is
        the added edge.  Per Theorem 2, edges a and b of G enclose a SESE
        region iff they are cycle equivalent in S.
        """
        if self.start is None or self.end is None:
            raise InvalidCFGError("CFG must have start and end nodes set")
        out = self.copy(name=f"{self.name}+ret")
        back = out.add_edge(self.end, self.start, label="$return$")
        return out, back


def edge_pairs(edges: Iterable[Edge]) -> List[Tuple[Any, Any]]:
    """Convenience: the (source, target) pairs of an edge collection."""
    return [e.pair for e in edges]
