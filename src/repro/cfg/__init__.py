"""Control-flow-graph substrate.

This package provides the multigraph CFG representation used throughout the
library, together with construction helpers, traversals, validation,
reducibility testing, region subgraph extraction, and DOT export.

The representation follows Definition 1 of the paper: a CFG is a directed
multigraph with distinguished ``start`` and ``end`` nodes such that every node
lies on some path from ``start`` to ``end``.
"""

from repro.cfg.graph import CFG, Edge, InvalidCFGError
from repro.cfg.builder import CFGBuilder, cfg_from_edges
from repro.cfg.traversal import (
    dfs_preorder,
    dfs_postorder,
    dfs_edges,
    reverse_postorder,
    reachable_from,
    reaches,
)
from repro.cfg.validate import validate_cfg, check_cfg
from repro.cfg.reducibility import is_reducible
from repro.cfg.intervals import (
    Interval,
    derived_sequence,
    interval_partition,
    is_reducible_by_intervals,
)
from repro.cfg.subgraph import region_subgraph
from repro.cfg.loops import NaturalLoop, loop_nest_forest, natural_loops
from repro.cfg.dot import cfg_to_dot

__all__ = [
    "NaturalLoop",
    "loop_nest_forest",
    "natural_loops",
    "Interval",
    "derived_sequence",
    "interval_partition",
    "is_reducible_by_intervals",
    "CFG",
    "Edge",
    "InvalidCFGError",
    "CFGBuilder",
    "cfg_from_edges",
    "dfs_preorder",
    "dfs_postorder",
    "dfs_edges",
    "reverse_postorder",
    "reachable_from",
    "reaches",
    "validate_cfg",
    "check_cfg",
    "is_reducible",
    "region_subgraph",
    "cfg_to_dot",
]
