"""Interoperability with networkx (optional dependency).

``networkx`` is not required by the library proper; these helpers exist for
users who already have graphs in networkx form and for the test suite,
which uses ``networkx.immediate_dominators`` as yet another independent
oracle for the dominance substrate.
"""

from __future__ import annotations

from typing import Optional

from repro.cfg.graph import CFG, NodeId


def to_networkx(cfg: CFG):
    """Convert a CFG to a ``networkx.MultiDiGraph``.

    Node identity is preserved; each edge carries its ``eid`` and ``label``
    as attributes, and the graph carries ``start``/``end`` attributes.
    """
    import networkx as nx

    graph = nx.MultiDiGraph(name=cfg.name, start=cfg.start, end=cfg.end)
    graph.add_nodes_from(cfg.nodes)
    for edge in cfg.edges:
        graph.add_edge(edge.source, edge.target, eid=edge.eid, label=edge.label)
    return graph


def from_networkx(graph, start: Optional[NodeId] = None, end: Optional[NodeId] = None) -> CFG:
    """Build a CFG from any networkx directed graph.

    ``start``/``end`` default to the graph attributes of the same name.
    Edge ``label`` attributes are preserved; multi-edges map to parallel
    edges.  The result is *not* validated (call
    :func:`repro.cfg.validate.validate_cfg` if Definition 1 must hold).
    """
    attrs = getattr(graph, "graph", {})
    start = attrs.get("start") if start is None else start
    end = attrs.get("end") if end is None else end
    cfg = CFG(start=start, end=end, name=attrs.get("name", "networkx"))
    for node in graph.nodes:
        cfg.add_node(node)
    if graph.is_multigraph():
        for source, target, data in graph.edges(data=True):
            cfg.add_edge(source, target, data.get("label"))
    else:
        for source, target, data in graph.edges(data=True):
            cfg.add_edge(source, target, data.get("label"))
    return cfg
