"""Extraction of a SESE region as a standalone CFG.

Per the paper, "each SESE region is a control flow graph in its own right":
this is the mechanism behind every divide-and-conquer application (per-region
SSA, per-region dominators, elimination dataflow).  Given a region's entry
edge ``a = (u, v)`` and exit edge ``b = (w, x)`` together with the set of
interior nodes, :func:`region_subgraph` builds a fresh CFG whose synthetic
``start`` stands for the entry edge and whose synthetic ``end`` stands for the
exit edge.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.cfg.graph import CFG, Edge, InvalidCFGError, NodeId

REGION_START = "$region_start$"
REGION_END = "$region_end$"


def region_subgraph(
    cfg: CFG,
    entry: Edge,
    exit: Edge,
    interior: Iterable[NodeId],
    name: Optional[str] = None,
) -> Tuple[CFG, Dict[Edge, Edge]]:
    """Extract the SESE region ``(entry, exit)`` as a standalone CFG.

    ``interior`` must be the region's nodes (entry.target ... exit.source,
    inclusive).  Returns ``(sub, edge_map)`` where ``edge_map`` maps each edge
    of ``cfg`` that lies inside the region (including ``entry`` and ``exit``)
    to its copy in ``sub``.  The synthetic start/end nodes of ``sub`` are
    :data:`REGION_START` and :data:`REGION_END`.

    Raises :class:`InvalidCFGError` if an interior node has an edge escaping
    the region other than through ``exit`` (which would mean the pair is not
    actually single entry single exit for the given interior).
    """
    inside: Set[NodeId] = set(interior)
    if entry.target not in inside or exit.source not in inside:
        raise InvalidCFGError(
            "region interior must contain the entry target and exit source"
        )
    sub = CFG(start=REGION_START, end=REGION_END, name=name or f"{cfg.name}.region")
    for node in inside:
        sub.add_node(node)

    edge_map: Dict[Edge, Edge] = {}
    edge_map[entry] = sub.add_edge(REGION_START, entry.target, entry.label)
    for node in inside:
        for edge in cfg.out_edges(node):
            if edge is exit:
                edge_map[edge] = sub.add_edge(node, REGION_END, edge.label)
            elif edge.target in inside:
                edge_map[edge] = sub.add_edge(node, edge.target, edge.label)
            else:
                raise InvalidCFGError(
                    f"edge {edge!r} escapes the region without being its exit"
                )
        for edge in cfg.in_edges(node):
            if edge is not entry and edge.source not in inside:
                raise InvalidCFGError(
                    f"edge {edge!r} enters the region without being its entry"
                )
    return sub, edge_map
