"""The admission-controlled analysis server (``repro serve``).

A stdlib-only, long-lived JSON-over-HTTP front end for the resilience
engine.  ``ThreadingHTTPServer`` handles each request on its own thread;
every request passes, in order, through

1. the :class:`~repro.service.drain.DrainController` -- a draining server
   answers 503 ``draining`` (exit-code taxonomy: ``EXIT_DRAINING``) and
   does no work;
2. the :class:`~repro.service.admission.AdmissionController` -- over-rate
   requests get 429, a saturated pool gets 503 (``EXIT_SHED``), both with
   structured bodies carrying ``retry_after``;
3. graceful degradation -- requests admitted past the soft inflight
   threshold run a cheaper engine configuration (no fast retries, no full
   cross-check, clamped deadline): the kernel -> reference -> reject
   ladder's middle rung, visible as ``"mode": "degraded"`` in responses;
4. the per-client session cache -- a
   :class:`~repro.service.cache.ShardedSessionCache` keyed by a stable
   graph key, holding the CFG, its
   :class:`~repro.kernel.session.AnalysisSession`, and cached responses,
   byte-bounded by ``ServiceConfig.max_cache_bytes``.

Endpoints:

``POST /run_analysis``
    Body: ``{"client": str?, "synth": {"seed", "size"}? | "source": str? |
    "cfg": {"edges", "start"?, "end"?}?, "analyses": [...]?,
    "deadline": seconds?}``.  Exactly one graph spelling is required.
``POST /run_batch``
    ``{"items": [<run_analysis body>, ...]}`` (capped at
    ``max_batch_items``); responses are per-item, admission is per-item.
``POST /apply_delta``
    ``{"client": str?, "key": str? | <graph spelling>, "deltas": [...]}``.
    Applies CFG edit deltas (the JSON wire form of
    :mod:`repro.incremental.delta`) to the client's *live*
    :class:`~repro.incremental.EditSession` for that graph, maintaining
    the PST incrementally; ``"key"`` addresses a graph cached by a prior
    request, a graph spelling creates the entry.  Deltas apply in order;
    the first invalid one stops the batch with 422 (its own edit rolled
    back exactly, earlier deltas remain applied).  Admission and drain
    rules are identical to ``/run_analysis``.
``GET /metrics``
    Prometheus text exposition of the server's registry.
``GET /healthz``
    200 ``ok`` normally, 503 ``draining`` during drain (load balancers
    stop routing before the socket closes).
``GET /statusz``
    JSON snapshot of admission/cache/drain state.

Observability: the server installs one *metrics-only* ambient observer for
its lifetime (``TraceRecorder`` is single-threaded by design, so tracing
cannot be ambient under a thread pool); each request instead records its
own span into a private recorder that is absorbed into a shared collector
under a lock.  At drain the collector -- now one schema-valid trace of
every request span plus a mergeable metrics dump -- is flushed to
``ServiceConfig.trace_path``.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.cfg.graph import InvalidCFGError
from repro.config import ALL_ANALYSES, AnalysisConfig
from repro.errors import EXIT_DRAINING, EXIT_SHED, ServiceDraining, ServiceShed
from repro.obs import observer as _obs
from repro.obs.observer import Observer
from repro.obs.trace import TraceRecorder
from repro.service.admission import AdmissionController
from repro.service.cache import ShardedSessionCache, cfg_cost_bytes
from repro.service.drain import DrainController

#: Analyses a degraded request still runs the full set of -- degradation
#: changes *how* stages run (ladder depth, checking), never the answer.
_DEGRADED_OVERRIDES = dict(fast_retries=0, full_check_limit=0)


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning for one :class:`AnalysisServer` (all knobs, one value)."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Total byte budget for per-client session shards.
    max_cache_bytes: int = 32 * 1024 * 1024
    max_clients: int = 64
    #: Steady-state requests/second (None = no rate limit) and burst size.
    rate: Optional[float] = None
    burst: Optional[int] = None
    #: Hard inflight cap (shed past it) and soft threshold (degrade past it).
    max_inflight: int = 8
    soft_inflight: Optional[int] = None
    #: Per-request deadline defaults/caps, seconds.
    default_deadline: float = 5.0
    max_deadline: float = 30.0
    #: Deadline clamp for degraded-mode requests.
    degraded_deadline: float = 1.0
    max_batch_items: int = 64
    max_body_bytes: int = 4 * 1024 * 1024
    #: Where the drain flush writes the request trace (None = nowhere).
    trace_path: Optional[str] = None
    drain_timeout: float = 30.0
    #: Base engine config; per-request settings are layered on top.
    analysis: AnalysisConfig = field(default_factory=AnalysisConfig)


class _BadRequest(ValueError):
    """Client error in the request body -> HTTP 400 with the message."""


def _cfg_from_request(body: Dict[str, Any]) -> Tuple[str, Any]:
    """(stable cache key, CFG) for the request's graph spelling.

    Exactly one of ``synth`` / ``source`` / ``cfg`` must be present.  The
    key is deterministic across processes (seeds, or a digest of the
    source/edge list), so a client's repeat requests hit its shard.
    """
    spellings = [k for k in ("synth", "source", "cfg") if body.get(k) is not None]
    if len(spellings) != 1:
        raise _BadRequest(
            "request must carry exactly one of 'synth', 'source', or 'cfg' "
            f"(got {spellings or 'none'})"
        )
    kind = spellings[0]
    if kind == "synth":
        spec = body["synth"]
        if not isinstance(spec, dict):
            raise _BadRequest("'synth' must be an object")
        try:
            seed = int(spec.get("seed", 0))
            size = int(spec.get("size", 20))
        except (TypeError, ValueError):
            raise _BadRequest("'synth' seed/size must be integers") from None
        if size < 0 or size > 100_000:
            raise _BadRequest("'synth' size must be in [0, 100000]")
        extra = int(spec.get("extra_edges", max(1, size // 2)))
        from repro.synth.unstructured import random_cfg

        return f"synth:{seed}:{size}:{extra}", random_cfg(
            seed, num_nodes=size, extra_edges=extra
        )
    if kind == "source":
        source = body["source"]
        if not isinstance(source, str):
            raise _BadRequest("'source' must be a MiniLang string")
        from repro.lang.lower import lower_procedure
        from repro.lang.parser import parse_procedure

        try:
            lowered = lower_procedure(parse_procedure(source))
        except InvalidCFGError:
            raise
        except Exception as error:
            raise _BadRequest(f"MiniLang parse/lower failed: {error}") from None
        digest = hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]
        return f"source:{digest}", lowered.cfg
    spec = body["cfg"]
    if not isinstance(spec, dict) or not isinstance(spec.get("edges"), list):
        raise _BadRequest("'cfg' must be an object with an 'edges' list")
    edges = []
    for pair in spec["edges"]:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) not in (2, 3)
            or not all(isinstance(x, str) for x in pair[:2])
        ):
            raise _BadRequest(f"bad edge spec {pair!r}")
        edges.append(tuple(pair))
    start = spec.get("start", "start")
    end = spec.get("end", "end")
    from repro.cfg.builder import cfg_from_edges

    cfg = cfg_from_edges(edges, start=start, end=end, validate=True)
    canonical = json.dumps([list(e) for e in edges] + [start, end], sort_keys=True)
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return f"cfg:{digest}", cfg


def _analyses_from_request(body: Dict[str, Any]) -> Tuple[str, ...]:
    analyses = body.get("analyses")
    if analyses is None:
        return ALL_ANALYSES
    if not isinstance(analyses, list) or not all(
        isinstance(a, str) for a in analyses
    ):
        raise _BadRequest("'analyses' must be a list of stage names")
    unknown = [a for a in analyses if a not in ALL_ANALYSES]
    if unknown:
        raise _BadRequest(
            f"unknown analyses {unknown}; choose from {list(ALL_ANALYSES)}"
        )
    return tuple(analyses)


class _ClientEntry:
    """One cached graph of one client: CFG + session + prior responses.

    ``edit`` is the client's live :class:`~repro.incremental.EditSession`
    for this graph, created lazily by the first ``/apply_delta``; ``lock``
    serializes edits against each other (each request thread edits the
    shared graph in place).
    """

    __slots__ = ("cfg", "session", "responses", "edit", "lock")

    def __init__(self, cfg, session):
        self.cfg = cfg
        self.session = session
        self.responses: Dict[Tuple[str, ...], Dict[str, Any]] = {}
        self.edit = None
        self.lock = threading.Lock()


class AnalysisServer:
    """Own the HTTP server, caches, admission, drain, and observability."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config if config is not None else ServiceConfig()
        self.observer = Observer(trace=False, metrics=True)
        self.admission = AdmissionController(
            rate=self.config.rate,
            burst=self.config.burst,
            max_inflight=self.config.max_inflight,
            soft_inflight=self.config.soft_inflight,
        )
        self.drain = DrainController()
        self.sessions = ShardedSessionCache(
            self.config.max_cache_bytes, max_clients=self.config.max_clients
        )
        self._collector = TraceRecorder(trace_id="service")
        self._collector_lock = threading.Lock()
        self._uninstall: Optional[Any] = None
        self._httpd = None
        self.requests = 0
        self._requests_lock = threading.Lock()
        self.drain.add_flush_hook(self._flush_trace)
        # A draining server must leave no /dev/shm entries behind: any
        # batch segments still parent-owned at shutdown are unlinked here
        # (atexit remains the last resort for non-service processes).
        from repro.kernel.shm import cleanup_all as _shm_cleanup

        self.drain.add_flush_hook(_shm_cleanup)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Bind the socket and install the ambient metrics observer."""
        from http.server import ThreadingHTTPServer

        if self._httpd is not None:
            return self._httpd
        server = self

        class Handler(_make_handler_base()):
            def handle_one(self, method):
                server._handle(self, method)

        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), Handler
        )
        self._obs_ctx = _obs.observe(self.observer)
        self._obs_ctx.__enter__()
        # The engine config the service layers per-request settings onto:
        # the service's byte bound also arms the kernel registry through
        # run_analysis (AnalysisConfig.max_cache_bytes).
        self._base_config = self.config.analysis.replace(
            max_cache_bytes=self.config.max_cache_bytes
        )
        return self._httpd

    @property
    def address(self) -> Tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("server not started")
        host, port = self._httpd.server_address[:2]
        return host, port

    def serve_forever(self, announce=None) -> DrainController:
        """Serve until SIGINT/SIGTERM (or request_drain), then drain."""
        from repro.service.drain import serve_until_shutdown

        httpd = self.start()
        if announce is not None:
            host, port = self.address
            print(
                f"serving analysis API on http://{host}:{port}/run_analysis",
                file=announce,
                flush=True,
            )
        try:
            return serve_until_shutdown(
                httpd,
                self.drain,
                announce=announce,
                drain_timeout=self.config.drain_timeout,
            )
        finally:
            self._teardown()

    def shutdown(self) -> None:
        """Drain + stop an in-process server (the test/soak path)."""
        self.drain.request_drain(reason="shutdown")
        if self._httpd is not None:
            self._httpd.shutdown()
            self.drain.wait_idle(timeout=self.config.drain_timeout)
            self.drain.flush()
            self._httpd.server_close()
        self._teardown()

    def _teardown(self) -> None:
        if getattr(self, "_obs_ctx", None) is not None:
            self._obs_ctx.__exit__(None, None, None)
            self._obs_ctx = None
        self._httpd = None

    def _flush_trace(self) -> None:
        if self.config.trace_path is None:
            return
        with self._collector_lock:
            with open(self.config.trace_path, "w", encoding="utf-8") as handle:
                self._collector.write_jsonl(
                    handle,
                    metrics_snapshot=self.observer.metrics.snapshot(),
                    metrics_dump=self.observer.metrics.dump(),
                )

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    def _handle(self, handler, method: str) -> None:
        """Route one HTTP request; never lets an exception escape."""
        path = handler.path.split("?", 1)[0]
        try:
            if method == "GET" and path == "/metrics":
                from repro.obs.export import CONTENT_TYPE

                body = self.observer.metrics.render_prometheus().encode("utf-8")
                _send(handler, 200, body, CONTENT_TYPE)
                return
            if method == "GET" and path == "/healthz":
                if self.drain.draining:
                    _send(handler, 503, b"draining\n", "text/plain; charset=utf-8")
                else:
                    _send(handler, 200, b"ok\n", "text/plain; charset=utf-8")
                return
            if method == "GET" and path == "/statusz":
                _send_json(handler, 200, self.statusz())
                return
            if method == "POST" and path == "/run_analysis":
                payload = _read_json(handler, self.config.max_body_bytes)
                status, body = self.handle_run_analysis(payload)
                _send_json(handler, status, body)
                return
            if method == "POST" and path == "/run_batch":
                payload = _read_json(handler, self.config.max_body_bytes)
                status, body = self.handle_run_batch(payload)
                _send_json(handler, status, body)
                return
            if method == "POST" and path == "/apply_delta":
                payload = _read_json(handler, self.config.max_body_bytes)
                status, body = self.handle_apply_delta(payload)
                _send_json(handler, status, body)
                return
            _send_json(
                handler,
                404,
                {"ok": False, "error": "not_found", "message": f"no route {path}"},
            )
        except _BadRequest as error:
            _send_json(
                handler,
                400,
                {"ok": False, "error": "bad_request", "message": str(error)},
            )
        except Exception as error:  # the service must never crash a worker
            self.observer.count("service.error", kind=type(error).__name__)
            try:
                _send_json(
                    handler,
                    500,
                    {
                        "ok": False,
                        "error": "internal",
                        "message": f"{type(error).__name__}: {error}",
                    },
                )
            except Exception:
                pass  # client went away mid-error: nothing left to tell it

    def statusz(self) -> Dict[str, Any]:
        from repro.kernel.registry import registry_stats

        with self._requests_lock:
            requests = self.requests
        return {
            "ok": True,
            "draining": self.drain.draining,
            "requests": requests,
            "admission": self.admission.stats(),
            "sessions": self.sessions.stats(),
            "registry": registry_stats(),
        }

    def handle_run_analysis(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """The full admission -> degrade -> cache -> engine pipeline.

        Returns ``(http_status, response_body)``; raises only
        :class:`_BadRequest` (malformed input).  Shed/drain outcomes are
        *returned* as structured bodies, not raised -- they are expected
        operating states, not errors.
        """
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        try:
            with self.drain.track():
                with self.admission.admit() as decision:
                    return self._run_admitted(body, decision.mode)
        except ServiceDraining as error:
            return error.http_status, _unavailable_body(error)
        except ServiceShed as error:
            return error.http_status, _unavailable_body(error)

    def _run_admitted(
        self, body: Dict[str, Any], mode: str
    ) -> Tuple[int, Dict[str, Any]]:
        from repro.resilience.engine import run_analysis

        started = time.perf_counter()
        client = body.get("client") or "anonymous"
        if not isinstance(client, str):
            raise _BadRequest("'client' must be a string")
        analyses = _analyses_from_request(body)
        graph_key, cfg = _cfg_from_request(body)

        with self._requests_lock:
            self.requests += 1

        shard = self.sessions.shard(client)
        entry = shard.get(graph_key)
        cached = False
        if entry is None:
            from repro.kernel.session import AnalysisSession

            entry = _ClientEntry(
                cfg,
                AnalysisSession(
                    cfg, max_cache_bytes=self.sessions.per_client_bytes
                ),
            )
            shard.put(graph_key, entry, cfg_cost_bytes(cfg))
        response = entry.responses.get(analyses)
        if response is not None:
            cached = True
            result_body = dict(response)
        else:
            deadline = body.get("deadline")
            if deadline is not None:
                try:
                    deadline = float(deadline)
                except (TypeError, ValueError):
                    raise _BadRequest("'deadline' must be a number") from None
                if deadline <= 0:
                    raise _BadRequest("'deadline' must be > 0")
            else:
                deadline = self.config.default_deadline
            deadline = min(deadline, self.config.max_deadline)
            overrides: Dict[str, Any] = {"deadline": deadline, "analyses": analyses}
            if mode == "degraded":
                overrides.update(_DEGRADED_OVERRIDES)
                overrides["deadline"] = min(
                    deadline, self.config.degraded_deadline
                )
            engine_config = self._base_config.replace(**overrides)
            # entry.cfg, not the request's spelling: /apply_delta may have
            # edited the client's live graph since it was first cached.
            # The entry lock keeps the engine from racing a concurrent edit.
            with entry.lock:
                result = run_analysis(entry.cfg, config=engine_config)
                graph = {
                    "nodes": entry.cfg.num_nodes,
                    "edges": entry.cfg.num_edges,
                }
            result_body = {
                "ok": result.ok,
                "error": result.error,
                "degraded_ladder": result.degraded,
                "graph": graph,
                "analyses": _summarize(result, analyses),
                "attempts": [
                    {
                        "stage": a.stage,
                        "path": a.path,
                        "outcome": a.outcome,
                        "elapsed": a.elapsed,
                    }
                    for a in result.diagnostic.attempts
                ],
            }
            if result.ok:
                entry.responses[analyses] = dict(result_body)
        elapsed = time.perf_counter() - started
        result_body.update(
            {
                "client": client,
                "key": graph_key,
                "mode": mode,
                "cached": cached,
                "elapsed": round(elapsed, 6),
            }
        )
        self._record_request(
            body_key=graph_key,
            client=client,
            mode=mode,
            cached=cached,
            ok=bool(result_body.get("ok")),
            elapsed=elapsed,
            nodes=entry.cfg.num_nodes,
        )
        status = 200 if result_body.get("ok") else 422
        return status, result_body

    def handle_apply_delta(
        self, body: Dict[str, Any]
    ) -> Tuple[int, Dict[str, Any]]:
        """Apply edit deltas to a client's live edit session.

        Same admission/drain pipeline as ``/run_analysis``; the work
        itself runs under the entry's lock (one editor per graph at a
        time).  Invalid deltas answer 422 ``invalid_delta`` naming the
        failing index; the failing delta is rolled back exactly, earlier
        deltas in the batch remain applied.
        """
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        try:
            with self.drain.track():
                with self.admission.admit() as decision:
                    return self._apply_admitted(body, decision.mode)
        except ServiceDraining as error:
            return error.http_status, _unavailable_body(error)
        except ServiceShed as error:
            return error.http_status, _unavailable_body(error)

    def _apply_admitted(
        self, body: Dict[str, Any], mode: str
    ) -> Tuple[int, Dict[str, Any]]:
        from repro.incremental import DeltaValidationError, EditSession

        started = time.perf_counter()
        client = body.get("client") or "anonymous"
        if not isinstance(client, str):
            raise _BadRequest("'client' must be a string")
        deltas = body.get("deltas")
        if not isinstance(deltas, list) or not deltas:
            raise _BadRequest("'deltas' must be a non-empty list of delta objects")

        shard = self.sessions.shard(client)
        key = body.get("key")
        if key is not None:
            if not isinstance(key, str):
                raise _BadRequest("'key' must be a string")
            if any(body.get(k) is not None for k in ("synth", "source", "cfg")):
                raise _BadRequest("give either 'key' or a graph spelling, not both")
            entry = shard.get(key)
            if entry is None:
                return 400, {
                    "ok": False,
                    "error": "unknown_key",
                    "message": f"client {client!r} has no cached graph {key!r}; "
                    "send a graph spelling to create one",
                    "client": client,
                    "key": key,
                }
            graph_key = key
        else:
            graph_key, cfg = _cfg_from_request(body)
            entry = shard.get(graph_key)
            if entry is None:
                from repro.kernel.session import AnalysisSession

                entry = _ClientEntry(
                    cfg,
                    AnalysisSession(
                        cfg, max_cache_bytes=self.sessions.per_client_bytes
                    ),
                )
                shard.put(graph_key, entry, cfg_cost_bytes(cfg))

        with self._requests_lock:
            self.requests += 1

        with entry.lock:
            if entry.edit is None:
                entry.edit = EditSession(
                    entry.cfg, self._base_config.replace(incremental=True)
                )
            edit = entry.edit
            applied = 0
            failure: Optional[Dict[str, Any]] = None
            for index, spec in enumerate(deltas):
                if not isinstance(spec, dict):
                    failure = {"index": index, "message": "delta must be an object"}
                    break
                try:
                    edit.apply(spec)
                except DeltaValidationError as error:
                    failure = {"index": index, "message": str(error)}
                    break
                applied += 1
            if applied:
                # The graph changed: every memoized /run_analysis response
                # for it is now stale.
                entry.responses.clear()
            stats = edit.stats.as_dict()
            graph = {"nodes": entry.cfg.num_nodes, "edges": entry.cfg.num_edges}
            regions = len(edit.pst.canonical_regions())

        elapsed = time.perf_counter() - started
        result_body: Dict[str, Any] = {
            "ok": failure is None,
            "applied": applied,
            "graph": graph,
            "edit_stats": stats,
            "pst": {"regions": regions},
            "client": client,
            "key": graph_key,
            "mode": mode,
            "elapsed": round(elapsed, 6),
        }
        if failure is not None:
            result_body["error"] = "invalid_delta"
            result_body["index"] = failure["index"]
            result_body["message"] = failure["message"]
        self._record_request(
            body_key=graph_key,
            client=client,
            mode=mode,
            cached=False,
            ok=failure is None,
            elapsed=elapsed,
            nodes=graph["nodes"],
        )
        return (200 if failure is None else 422), result_body

    def handle_run_batch(self, body: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(body, dict) or not isinstance(body.get("items"), list):
            raise _BadRequest("batch body must be {'items': [...]}")
        items = body["items"]
        if len(items) > self.config.max_batch_items:
            raise _BadRequest(
                f"batch of {len(items)} exceeds max_batch_items="
                f"{self.config.max_batch_items}"
            )
        client = body.get("client")
        results = []
        for item in items:
            if not isinstance(item, dict):
                results.append(
                    {
                        "status": 400,
                        "body": {"ok": False, "error": "bad_request",
                                 "message": "batch item must be an object"},
                    }
                )
                continue
            if client is not None and "client" not in item:
                item = dict(item, client=client)
            try:
                status, item_body = self.handle_run_analysis(item)
            except _BadRequest as error:
                status, item_body = 400, {
                    "ok": False, "error": "bad_request", "message": str(error),
                }
            results.append({"status": status, "body": item_body})
        ok = all(r["status"] == 200 for r in results)
        return 200, {"ok": ok, "count": len(results), "items": results}

    # ------------------------------------------------------------------
    def _record_request(self, **attrs) -> None:
        """One span per request, absorbed into the shared collector."""
        elapsed = attrs.pop("elapsed")
        self.observer.observe_value(
            "service.request.seconds",
            elapsed,
            mode=attrs["mode"],
            cached=str(attrs["cached"]).lower(),
        )
        recorder = TraceRecorder()
        span = recorder.start("service.request", **attrs)
        span.finish()
        record = recorder.records[-1]
        # The request's real duration (the recorder only saw an instant).
        record["start"] = 0.0
        record["end"] = round(elapsed, 9)
        record["elapsed"] = round(elapsed, 9)
        with self._collector_lock:
            self._collector.absorb(recorder.records)


def _summarize(result, analyses: Tuple[str, ...]) -> Dict[str, Any]:
    """Small JSON-able summaries of each stage's artifact (never the
    artifact itself -- responses must stay O(1) in graph size)."""
    summary: Dict[str, Any] = {}
    if "pst" in analyses:
        summary["pst"] = (
            {"regions": len(result.pst.canonical_regions())}
            if result.pst is not None
            else None
        )
    if "dominators" in analyses:
        summary["dominators"] = (
            {"entries": len(result.idom)} if result.idom is not None else None
        )
    if "control-regions" in analyses:
        summary["control-regions"] = (
            {"classes": len(result.control_regions)}
            if result.control_regions is not None
            else None
        )
    return summary


def _unavailable_body(error) -> Dict[str, Any]:
    body = {
        "ok": False,
        "message": str(error),
        "exit_code": EXIT_DRAINING
        if isinstance(error, ServiceDraining)
        else EXIT_SHED,
    }
    if isinstance(error, ServiceDraining):
        body["error"] = "draining"
    else:
        body["error"] = "shed"
        body["reason"] = getattr(error, "reason", "rate")
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        body["retry_after"] = retry_after
    return body


# ----------------------------------------------------------------------
# http.server plumbing
# ----------------------------------------------------------------------

def _make_handler_base():
    from http.server import BaseHTTPRequestHandler

    class Base(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"

        def do_GET(self):  # noqa: N802 - stdlib naming convention
            self.handle_one("GET")

        def do_POST(self):  # noqa: N802
            self.handle_one("POST")

        def log_message(self, format, *args):  # metrics, not stderr spam
            pass

    return Base


def _read_json(handler, max_body_bytes: int) -> Dict[str, Any]:
    length = handler.headers.get("Content-Length")
    try:
        length = int(length)
    except (TypeError, ValueError):
        raise _BadRequest("Content-Length required") from None
    if length < 0 or length > max_body_bytes:
        raise _BadRequest(f"body of {length} bytes exceeds cap {max_body_bytes}")
    raw = handler.rfile.read(length)
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise _BadRequest(f"body is not valid JSON: {error}") from None


def _send(handler, status: int, body: bytes, content_type: str) -> None:
    handler.send_response(status)
    handler.send_header("Content-Type", content_type)
    handler.send_header("Content-Length", str(len(body)))
    handler.end_headers()
    handler.wfile.write(body)


def _send_json(handler, status: int, body: Dict[str, Any]) -> None:
    payload = json.dumps(body, sort_keys=True).encode("utf-8")
    if status in (429, 503) and "retry_after" in body:
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Retry-After", str(max(1, round(body["retry_after"]))))
        handler.send_header("Content-Length", str(len(payload)))
        handler.end_headers()
        handler.wfile.write(payload)
        return
    _send(handler, status, payload, "application/json")
