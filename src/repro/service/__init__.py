"""The long-lived analysis service: bounded caches, admission control.

This package turns the library into something a fleet can run: a
stdlib-only JSON-over-HTTP server (:mod:`repro.service.server`) exposing
``run_analysis``/``run_batch`` over the resilience engine, with

* size-accounted LRU caches (:mod:`repro.service.cache`) bounding both the
  per-client session shards and -- via ``AnalysisConfig.max_cache_bytes`` --
  the kernel layer's frozen-CSR registry and session memoization;
* token-bucket + queue-depth admission control
  (:mod:`repro.service.admission`) that sheds load with structured 429/503
  diagnostics and degrades gracefully under pressure instead of queuing
  unboundedly;
* graceful drain on SIGTERM (:mod:`repro.service.drain`), shared with
  ``repro metrics serve``: finish in-flight requests, flush the observer
  shard, refuse new work;
* a deterministic chaos soak harness (:mod:`repro.service.soak`) driving
  concurrent seeded clients with fault injection and recording per-size-band
  p99 latency SLO rows for ``repro bench`` to gate.

See docs/ROBUSTNESS.md ("Serving and load shedding") for the operational
contract and exit codes.

Re-exports are lazy: :mod:`repro.kernel.registry` imports
:mod:`repro.service.cache` for the LRU, so an eager ``from .server import
...`` here would close an import cycle through the kernel layer.
"""

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.admission import AdmissionController, TokenBucket
    from repro.service.cache import ShardedSessionCache, SizedLRU, frozen_cost_bytes
    from repro.service.server import AnalysisServer, ServiceConfig
    from repro.service.soak import SoakConfig, SoakReport, run_soak

__all__ = [
    "AdmissionController",
    "AnalysisServer",
    "ServiceConfig",
    "ShardedSessionCache",
    "SizedLRU",
    "SoakConfig",
    "SoakReport",
    "TokenBucket",
    "frozen_cost_bytes",
    "run_soak",
]

_EXPORTS = {
    "AdmissionController": "repro.service.admission",
    "TokenBucket": "repro.service.admission",
    "ShardedSessionCache": "repro.service.cache",
    "SizedLRU": "repro.service.cache",
    "frozen_cost_bytes": "repro.service.cache",
    "AnalysisServer": "repro.service.server",
    "ServiceConfig": "repro.service.server",
    "SoakConfig": "repro.service.soak",
    "SoakReport": "repro.service.soak",
    "run_soak": "repro.service.soak",
}


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)
