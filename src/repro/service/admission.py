"""Admission control and load shedding for the analysis service.

Two independent pressure signals gate every request *before* any analysis
work happens:

* a :class:`TokenBucket` bounds sustained request **rate** (capacity =
  burst, refill = steady-state requests/second);
* an inflight counter bounds **queue depth** (requests currently being
  served across the thread pool).

:class:`AdmissionController` combines them into one of four decisions:

``full``
    Under both limits: run the normal engine ladder.
``degraded``
    Inflight is past the soft threshold but under the hard cap: still
    admitted, but the server clamps the request to a cheaper engine
    configuration (no fast retries, no full cross-check, tighter
    deadline) -- the kernel -> reference -> reject ladder's middle rung.
``shed`` (reason ``rate``)
    The token bucket is empty: HTTP 429 with ``Retry-After`` derived
    from the bucket's refill rate.
``shed`` (reason ``depth``)
    Inflight is at the hard cap: HTTP 503 -- the server is saturated and
    more queueing would only grow latency unboundedly.

Decisions are counted into the ambient observer as ``service.admit`` so
shed rates are visible on ``/metrics``.  The clock is injectable for
deterministic tests; everything is thread-safe and stdlib-only.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ServiceShed
from repro.obs import observer as _obs


class TokenBucket:
    """A classic token bucket: ``capacity`` burst, ``rate`` tokens/second.

    ``try_acquire`` is non-blocking -- admission control never queues; it
    answers *now* or tells the client when to come back.  ``rate=None``
    disables rate limiting (the bucket always has a token).
    """

    def __init__(
        self,
        rate: Optional[float],
        capacity: Optional[int] = None,
        clock=time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be > 0 (or None to disable)")
        self.rate = rate
        self.capacity = capacity if capacity is not None else max(1, int(rate or 1))
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._clock = clock
        self._tokens = float(self.capacity)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = now - self._last
        if elapsed > 0:
            self._tokens = min(self.capacity, self._tokens + elapsed * self.rate)
            self._last = now

    def try_acquire(self) -> bool:
        """Take one token if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def drain_tokens(self) -> None:
        """Empty the bucket (chaos probes force a deterministic 429)."""
        with self._lock:
            self._last = self._clock()
            self._tokens = 0.0

    def fill_tokens(self) -> None:
        """Refill to capacity (probes that must not be rate-limited)."""
        with self._lock:
            self._last = self._clock()
            self._tokens = float(self.capacity)

    def retry_after(self) -> float:
        """Seconds until one token will be available (0 when disabled)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            self._refill(self._clock())
            deficit = 1.0 - self._tokens
            return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's answer for one request.

    ``mode`` is ``"full"`` or ``"degraded"`` for admitted requests.  Shed
    requests are raised as :class:`~repro.errors.ServiceShed` instead, so
    callers that forget to handle shedding fail loudly rather than running
    unadmitted work.
    """

    mode: str


class AdmissionController:
    """Combine rate and depth limits into admit/degrade/shed decisions.

    Use as a context manager around the work being admitted::

        with admission.admit() as decision:   # may raise ServiceShed
            run(degraded=decision.mode == "degraded")

    The ``with`` body holds one inflight slot; the counter is released on
    exit however the work ends.
    """

    def __init__(
        self,
        *,
        rate: Optional[float] = None,
        burst: Optional[int] = None,
        max_inflight: int = 8,
        soft_inflight: Optional[int] = None,
        clock=time.monotonic,
    ):
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.bucket = TokenBucket(rate, burst, clock=clock)
        self.max_inflight = max_inflight
        # Default soft threshold: degrade in the top half of the window.
        self.soft_inflight = (
            soft_inflight if soft_inflight is not None else max(1, max_inflight // 2)
        )
        if not (1 <= self.soft_inflight <= max_inflight):
            raise ValueError("soft_inflight must be in [1, max_inflight]")
        self._inflight = 0
        self._lock = threading.Lock()
        self.admitted = 0
        self.degraded = 0
        self.shed_rate = 0
        self.shed_depth = 0

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def _count(self, decision: str, **labels: str) -> None:
        o = _obs._CURRENT
        if o is not None:
            o.count("service.admit", decision=decision, **labels)

    def acquire(self) -> AdmissionDecision:
        """Claim an inflight slot, or raise :class:`ServiceShed`.

        Depth is checked before rate: when the pool is saturated a token
        would be wasted on a request we must refuse anyway.
        """
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.shed_depth += 1
                self._count("shed", reason="depth")
                raise ServiceShed(
                    f"server saturated ({self._inflight} requests in flight, "
                    f"cap {self.max_inflight})",
                    reason="depth",
                    retry_after=1.0,
                )
            if not self.bucket.try_acquire():
                self.shed_rate += 1
                self._count("shed", reason="rate")
                raise ServiceShed(
                    "request rate limit exceeded",
                    reason="rate",
                    retry_after=round(self.bucket.retry_after(), 3) or 0.1,
                )
            self._inflight += 1
            if self._inflight > self.soft_inflight:
                self.degraded += 1
                self._count("degraded")
                mode = "degraded"
            else:
                self.admitted += 1
                self._count("full")
                mode = "full"
            self._gauge()
            return AdmissionDecision(mode=mode)

    def release(self) -> None:
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            self._gauge()

    def _gauge(self) -> None:
        o = _obs._CURRENT
        if o is not None:
            o.set_gauge("service.inflight", self._inflight)

    def admit(self) -> "_AdmissionScope":
        return _AdmissionScope(self)

    def stats(self) -> dict:
        with self._lock:
            return {
                "inflight": self._inflight,
                "admitted": self.admitted,
                "degraded": self.degraded,
                "shed_rate": self.shed_rate,
                "shed_depth": self.shed_depth,
            }


class _AdmissionScope:
    """Context manager pairing :meth:`acquire` with a guaranteed release."""

    def __init__(self, controller: AdmissionController):
        self._controller = controller
        self.decision: Optional[AdmissionDecision] = None

    def __enter__(self) -> AdmissionDecision:
        self.decision = self._controller.acquire()
        return self.decision

    def __exit__(self, *exc) -> None:
        if self.decision is not None:
            self._controller.release()
