"""Graceful shutdown shared by every long-running server in the repo.

``repro serve`` and ``repro metrics serve`` have the same lifecycle
problem: a SIGTERM (or Ctrl-C) must stop *accepting* work immediately,
let requests already in flight finish, flush whatever observability state
the process holds, and only then exit -- killing the socket mid-request
turns every deploy into a client-visible error.

:class:`DrainController` is the state machine: a ``draining`` flag, an
inflight counter with a condition variable, and a list of flush hooks run
exactly once after the last in-flight request completes.
:func:`serve_until_shutdown` is the loop both CLI commands share -- it
installs SIGINT/SIGTERM handlers (restoring the previous ones on exit),
serves until a signal or an explicit :meth:`DrainController.request_drain`,
then drains and closes the server.

Signal handlers only set the drain event (the handler itself must stay
async-signal-safe); all real work happens on the serving thread.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable, List, Optional

from repro.obs import observer as _obs


class DrainController:
    """Tracks draining state and in-flight work for one server process."""

    def __init__(self):
        self._draining = threading.Event()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight = 0
        self._flush_hooks: List[Callable[[], None]] = []
        self._flushed = False
        self.reason: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def request_drain(self, reason: str = "requested") -> None:
        """Begin draining: refuse new work, let in-flight work finish."""
        if not self._draining.is_set():
            self.reason = reason
            self._draining.set()
            o = _obs._CURRENT
            if o is not None:
                o.count("service.drain", reason=reason)

    def wait_for_drain(self, timeout: Optional[float] = None) -> bool:
        """Block until draining begins (the serve loop's parking spot)."""
        return self._draining.wait(timeout)

    # ------------------------------------------------------------------
    def enter(self) -> None:
        """Claim an in-flight slot; raises if the server is draining.

        Callers catch :class:`~repro.errors.ServiceDraining` and turn it
        into a structured 503, mirroring the admission controller's
        :class:`~repro.errors.ServiceShed`.
        """
        from repro.errors import ServiceDraining

        with self._lock:
            if self._draining.is_set():
                raise ServiceDraining("server is draining; no new work accepted")
            self._inflight += 1

    def exit(self) -> None:
        with self._idle:
            self._inflight = max(0, self._inflight - 1)
            if self._inflight == 0:
                self._idle.notify_all()

    def track(self) -> "_TrackScope":
        """Context manager form of :meth:`enter`/:meth:`exit`."""
        return _TrackScope(self)

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no requests are in flight; True when idle."""
        with self._idle:
            if self._inflight == 0:
                return True
            return self._idle.wait_for(lambda: self._inflight == 0, timeout)

    # ------------------------------------------------------------------
    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Register a once-only hook run after the drain completes."""
        with self._lock:
            self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Run every flush hook exactly once (hook errors are swallowed --
        a failed trace flush must not abort the remaining hooks or turn a
        clean drain into a crash)."""
        with self._lock:
            if self._flushed:
                return
            self._flushed = True
            hooks = list(self._flush_hooks)
        for hook in hooks:
            try:
                hook()
            except Exception:
                pass


class _TrackScope:
    def __init__(self, controller: DrainController):
        self._controller = controller

    def __enter__(self) -> DrainController:
        self._controller.enter()
        return self._controller

    def __exit__(self, *exc) -> None:
        self._controller.exit()


def install_signal_handlers(
    drain: DrainController,
    signals=(signal.SIGINT, signal.SIGTERM),
) -> Callable[[], None]:
    """Point ``signals`` at ``drain.request_drain``; returns a restorer.

    Only the main thread may install signal handlers in Python; callers on
    other threads (tests driving an in-process server) get a no-op
    restorer back and rely on explicit :meth:`request_drain` instead.
    """
    if threading.current_thread() is not threading.main_thread():
        return lambda: None
    previous = {}
    for sig in signals:
        def _handler(signum, frame, _drain=drain):
            _drain.request_drain(reason=signal.Signals(signum).name)
        previous[sig] = signal.signal(sig, _handler)

    def restore() -> None:
        for sig, old in previous.items():
            signal.signal(sig, old)

    return restore


def serve_until_shutdown(
    server,
    drain: Optional[DrainController] = None,
    *,
    announce=None,
    drain_timeout: float = 30.0,
) -> DrainController:
    """Serve an ``http.server`` instance until signalled, then drain it.

    The shared serve loop of ``repro serve`` and ``repro metrics serve``:

    1. install SIGINT/SIGTERM handlers that flip the drain flag;
    2. ``serve_forever`` on a worker thread, park on the drain event;
    3. on drain: stop accepting connections, wait (bounded by
       ``drain_timeout``) for in-flight requests, run flush hooks, close.

    Returns the :class:`DrainController` so callers can inspect why and
    how cleanly the server stopped.
    """
    if drain is None:
        drain = DrainController()
    restore = install_signal_handlers(drain)
    thread = threading.Thread(
        target=server.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve",
        daemon=True,
    )
    thread.start()
    try:
        # Poll rather than block indefinitely: a bounded wait guarantees the
        # main thread keeps taking signal handlers on every platform.
        while not drain.wait_for_drain(timeout=0.2):
            pass
        if announce is not None:
            print(
                f"draining ({drain.reason}): waiting for "
                f"{drain.inflight} in-flight request(s)",
                file=announce,
                flush=True,
            )
        server.shutdown()  # stop accepting; in-flight handlers keep running
        thread.join(timeout=drain_timeout)
        drain.wait_idle(timeout=drain_timeout)
        drain.flush()
    finally:
        restore()
        server.server_close()
    return drain
