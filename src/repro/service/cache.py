"""Size-accounted LRU caching for the analysis service and kernel layer.

The frozen-CSR registry and :class:`~repro.kernel.session.AnalysisSession`
memoization were designed for short-lived driver processes, where "dies
with the graph" (weak keys) is a sufficient bound.  A long-lived server
holds strong references to thousands of client graphs, so every cache on
the hot path must be *byte-bounded*: a :class:`SizedLRU` charges each entry
an explicit cost (for CFG-derived artifacts, the CSR array byte estimate of
:func:`frozen_cost_bytes`) and evicts least-recently-used entries until the
total fits, counting every eviction into the ambient
:class:`~repro.obs.metrics.MetricsRegistry` as ``cache.evict`` so cache
pressure is visible on ``/metrics`` next to the engine's retry counters.

:class:`ShardedSessionCache` layers per-client fairness on top: each client
gets its own LRU shard with an equal slice of the byte budget, and the
shard set itself is LRU-bounded, so one chatty client can neither evict
everyone else's sessions nor grow the shard map without bound.

Everything here is thread-safe (one lock per cache -- operations are a few
dict moves, never analysis work) and stdlib-only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.obs import observer as _obs

#: Per-int-entry cost of the frozen CSR arrays.  CPython small ints in a
#: list cost a pointer (8) plus a share of the int object; 16 bytes/entry
#: is the honest flat estimate for the dense arrays FrozenCFG keeps.
BYTES_PER_ENTRY = 16

#: Fixed per-snapshot overhead (the FrozenCFG object, its dicts' headers).
SNAPSHOT_OVERHEAD = 512


def frozen_cost_bytes(frozen) -> int:
    """Estimated resident bytes of one frozen CSR snapshot.

    Counts the dense integer arrays (three per direction plus the edge
    endpoint pair) and the ``index_of`` map.  An estimate, not an audit --
    what matters is that cost is *monotone in graph size* and consistent
    across entries, so a byte budget translates into a graph budget.
    """
    n, m = frozen.num_nodes, frozen.num_edges
    entries = (
        2 * m  # edge_src / edge_dst
        + 2 * (n + 1)  # succ_off / pred_off
        + 4 * m  # succ_edge / succ_dst / pred_edge / pred_src
        + len(frozen.self_loops)
        + 3 * n  # node_ids + index_of keys/values
    )
    return SNAPSHOT_OVERHEAD + BYTES_PER_ENTRY * entries


def cfg_cost_bytes(cfg) -> int:
    """The :func:`frozen_cost_bytes` estimate computed from a live CFG.

    Used where the snapshot may not exist yet (admission decisions, session
    artifact accounting): same formula, driven by the CFG's own counts.
    """
    n, m = cfg.num_nodes, cfg.num_edges
    return SNAPSHOT_OVERHEAD + BYTES_PER_ENTRY * (6 * m + 2 * (n + 1) + 3 * n)


class SizedLRU:
    """A byte-bounded, thread-safe LRU map with explicit per-entry costs.

    ``max_bytes=None`` disables eviction (the cache degenerates to a plain
    recency-ordered dict), so callers can thread an optional bound through
    without branching.  ``name`` labels the ``cache.evict`` /
    ``cache.bytes`` observability signals; ``on_evict(key, value)`` lets
    owners release resources (never called under the lock's critical
    section for user code re-entry safety -- evicted pairs are collected
    first, called after).
    """

    def __init__(
        self,
        max_bytes: Optional[int],
        name: str = "lru",
        on_evict: Optional[Callable[[Any, Any], None]] = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (or None for unbounded)")
        self.max_bytes = max_bytes
        self.name = name
        self.on_evict = on_evict
        self.evictions = 0
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        return self._total

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Any, default: Any = None) -> Any:
        """The value for ``key`` (refreshing recency), or ``default``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._count("cache.lookup", result="miss")
                return default
            self._entries.move_to_end(key)
            self.hits += 1
            self._count("cache.lookup", result="hit")
            return entry[0]

    def put(self, key: Any, value: Any, cost: int) -> None:
        """Insert (or replace) ``key`` at ``cost`` bytes, evicting LRU tail.

        An entry costlier than the whole budget is admitted alone -- the
        cache would otherwise thrash on it -- but immediately becomes the
        eviction candidate for the next insert, so the bound holds from the
        next insertion on (and ``total_bytes`` overshoot is visible to the
        owner, which is what the soak's memory assertion watches).
        """
        if cost < 0:
            raise ValueError("cost must be >= 0")
        evicted = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._total -= old[1]
            self._entries[key] = (value, cost)
            self._total += cost
            if self.max_bytes is not None:
                while self._total > self.max_bytes and len(self._entries) > 1:
                    old_key, (old_value, old_cost) = self._entries.popitem(last=False)
                    self._total -= old_cost
                    self.evictions += 1
                    self._count("cache.evict", reason="size")
                    evicted.append((old_key, old_value))
                # A single entry over budget: keep it (see docstring) unless
                # the budget is zero, where caching is explicitly off.
                if self.max_bytes == 0 and self._entries:
                    old_key, (old_value, old_cost) = self._entries.popitem(last=False)
                    self._total -= old_cost
                    self.evictions += 1
                    self._count("cache.evict", reason="size")
                    evicted.append((old_key, old_value))
            self._gauge()
        if self.on_evict is not None:
            for old_key, old_value in evicted:
                try:
                    self.on_evict(old_key, old_value)
                except Exception:
                    pass  # eviction callbacks must never break the cache

    def pop(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return default
            self._total -= entry[1]
            self._gauge()
            return entry[0]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._total = 0
            self._gauge()

    def keys(self) -> Iterator[Any]:
        with self._lock:
            return iter(list(self._entries.keys()))

    def resize(self, max_bytes: Optional[int]) -> None:
        """Change the budget; shrinking evicts immediately."""
        evicted = []
        with self._lock:
            self.max_bytes = max_bytes
            if max_bytes is not None:
                while self._total > max_bytes and len(self._entries) > (
                    0 if max_bytes == 0 else 1
                ):
                    old_key, (old_value, old_cost) = self._entries.popitem(last=False)
                    self._total -= old_cost
                    self.evictions += 1
                    self._count("cache.evict", reason="resize")
                    evicted.append((old_key, old_value))
            self._gauge()
        if self.on_evict is not None:
            for old_key, old_value in evicted:
                try:
                    self.on_evict(old_key, old_value)
                except Exception:
                    pass

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._total,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    # ------------------------------------------------------------------
    def _count(self, metric: str, **labels: str) -> None:
        # ``_obs`` can already be torn down when a weakref death callback
        # lands during interpreter shutdown -- stay silent, never raise.
        o = _obs._CURRENT if _obs is not None else None
        if o is not None:
            o.count(metric, cache=self.name, **labels)

    def _gauge(self) -> None:
        o = _obs._CURRENT if _obs is not None else None
        if o is not None:
            o.set_gauge("cache.bytes", self._total, cache=self.name)
            o.set_gauge("cache.entries", len(self._entries), cache=self.name)


class ShardedSessionCache:
    """Per-client LRU shards under one total byte budget.

    ``max_bytes`` divides equally over ``max_clients`` shards; the shard
    map itself is an LRU over client ids, so an abandoned client's whole
    shard is reclaimed when a new client arrives past the cap.  Values are
    whatever the service stores per CFG (an entry holding the CFG, its
    :class:`~repro.kernel.session.AnalysisSession`, and cached responses);
    this class only does the byte accounting and fairness.
    """

    def __init__(self, max_bytes: int, max_clients: int = 64):
        if max_clients < 1:
            raise ValueError("max_clients must be >= 1")
        self.max_bytes = max_bytes
        self.max_clients = max_clients
        self.per_client_bytes = max(1, max_bytes // max_clients)
        self._lock = threading.Lock()
        self._shards: "OrderedDict[str, SizedLRU]" = OrderedDict()

    def shard(self, client: str) -> SizedLRU:
        """The (created-on-demand) LRU shard for ``client``."""
        with self._lock:
            shard = self._shards.get(client)
            if shard is None:
                shard = SizedLRU(
                    self.per_client_bytes, name=f"service.sessions[{client}]"
                )
                self._shards[client] = shard
                while len(self._shards) > self.max_clients:
                    _, dead = self._shards.popitem(last=False)
                    dead.clear()
                    o = _obs._CURRENT
                    if o is not None:
                        o.count("cache.evict", cache="service.shards", reason="clients")
            else:
                self._shards.move_to_end(client)
            return shard

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return sum(s.total_bytes for s in self._shards.values())

    def stats(self) -> Dict[str, object]:
        with self._lock:
            shards = {name: s.stats() for name, s in self._shards.items()}
        return {
            "clients": len(shards),
            "bytes": sum(s["bytes"] for s in shards.values()),
            "evictions": sum(s["evictions"] for s in shards.values()),
            "shards": shards,
        }
