"""Deterministic chaos soak for the analysis service (``repro soak``).

Starts an in-process :class:`~repro.service.server.AnalysisServer`, drives
it with ``clients`` concurrent seeded workload threads over real HTTP for
``duration`` seconds while a seeded
:class:`~repro.resilience.faults.FaultPlan` corrupts the fast kernels
underneath, then runs three *deterministic* probes that timing alone
cannot be trusted to produce:

* **rate probe** -- empty the token bucket, issue one request, require a
  structured 429 with ``Retry-After``;
* **depth probe** -- claim every inflight slot, issue one request, require
  a structured 503 (reason ``depth``);
* **drain probe** -- park a request in flight, begin draining, require
  ``/healthz`` 503 + new work refused with a ``draining`` body *and* the
  parked request to complete normally.

The report asserts the service's whole robustness contract: zero
unhandled server exceptions (no HTTP 500s, no client-visible connection
resets), RSS growth bounded by the cache budget plus a fixed slack, and
per-size-band p99 latency within the SLO budgets.  The SLO rows are
written into ``benchmarks/results/BENCH_perf.json`` under ``service_slo``
so ``repro bench --slo`` can gate them in CI.

Everything is seeded: workload streams per client, fault schedule, and
graph shapes are all functions of ``SoakConfig.seed``.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.resilience.faults import FaultPlan, inject
from repro.service.server import AnalysisServer, ServiceConfig

#: Workload size bands: (band name, interior nodes, p99 budget seconds).
#: Budgets are generous on purpose -- the gate exists to catch order-of-
#: magnitude regressions (a lost cache, an accidental O(n^2)), not jitter.
DEFAULT_BANDS: Tuple[Tuple[str, int, float], ...] = (
    ("small", 12, 1.0),
    ("medium", 60, 2.0),
    ("large", 240, 5.0),
)


@dataclass(frozen=True)
class SoakConfig:
    """One soak run, fully determined by its fields."""

    duration: float = 10.0
    clients: int = 8
    seed: int = 0
    #: Graphs per client per band -- small pool so session caches get hits.
    graphs_per_band: int = 4
    bands: Tuple[Tuple[str, int, float], ...] = DEFAULT_BANDS
    #: Fault injection: per-execution firing probability of every site.
    fault_rate: float = 0.02
    #: Probability a workload iteration POSTs /apply_delta (a random edge
    #: insertion on the client's live graph) instead of /run_analysis --
    #: the mixed edit/analyze profile.  0 restores the pure-analyze soak.
    edit_rate: float = 0.25
    #: Service knobs under test.
    max_cache_bytes: int = 8 * 1024 * 1024
    max_inflight: int = 12
    soft_inflight: Optional[int] = None
    rate: Optional[float] = 400.0
    burst: Optional[int] = 100
    #: RSS growth allowance beyond max_cache_bytes (thread stacks, arena
    #: fragmentation, interned request machinery).
    rss_slack_bytes: int = 192 * 1024 * 1024
    trace_path: Optional[str] = None


@dataclass
class SoakReport:
    """What happened, what was asserted, and whether it all held."""

    config: Dict[str, Any] = field(default_factory=dict)
    requests: int = 0
    ok: int = 0
    analysis_failed: int = 0
    shed: int = 0
    draining_refused: int = 0
    client_errors: int = 0
    server_errors: int = 0
    transport_errors: int = 0
    fault_fires: int = 0
    cache_hits: int = 0
    edits: int = 0
    edit_rejected: int = 0
    probes: Dict[str, bool] = field(default_factory=dict)
    slo: List[Dict[str, Any]] = field(default_factory=list)
    rss_start_bytes: Optional[int] = None
    rss_end_bytes: Optional[int] = None
    rss_bound_bytes: Optional[int] = None
    failures: List[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def passed(self) -> bool:
        return not self.failures

    def to_json(self) -> Dict[str, Any]:
        data = dict(self.__dict__)
        data["passed"] = self.passed
        return data

    def render(self) -> str:
        lines = [
            f"soak: {self.requests} requests over {self.elapsed:.1f}s "
            f"({self.ok} ok, {self.shed} shed, {self.analysis_failed} failed, "
            f"{self.server_errors} server errors, {self.fault_fires} faults fired, "
            f"{self.edits} edits applied, {self.edit_rejected} edits rejected)",
        ]
        for row in self.slo:
            verdict = "ok" if row["ok"] else "OVER BUDGET"
            lines.append(
                f"  slo {row['band']:<7} n={row['n']:<5} p50={row['p50_s']:.4f}s "
                f"p99={row['p99_s']:.4f}s budget={row['budget_s']:.2f}s {verdict}"
            )
        for name, ok in sorted(self.probes.items()):
            lines.append(f"  probe {name}: {'ok' if ok else 'FAILED'}")
        if self.rss_start_bytes is not None and self.rss_end_bytes is not None:
            lines.append(
                f"  rss {self.rss_start_bytes / 1e6:.1f}MB -> "
                f"{self.rss_end_bytes / 1e6:.1f}MB "
                f"(bound {self.rss_bound_bytes / 1e6:.1f}MB growth)"
            )
        lines.append("PASS" if self.passed else "FAIL: " + "; ".join(self.failures))
        return "\n".join(lines)


def _rss_bytes() -> Optional[int]:
    """Resident set size from /proc (None where unavailable)."""
    try:
        with open("/proc/self/status", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        return None
    return None


def _post(base: str, path: str, body: Dict[str, Any], timeout: float = 30.0):
    """(status, parsed body) for one POST; HTTP errors are data, not raises."""
    request = urllib.request.Request(
        base + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        try:
            return error.code, json.loads(error.read())
        except ValueError:
            return error.code, {}


def _percentile(samples: List[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[index]


class _ClientStats:
    """Per-thread tallies (merged single-threadedly after join)."""

    def __init__(self):
        self.requests = 0
        self.ok = 0
        self.analysis_failed = 0
        self.shed = 0
        self.draining_refused = 0
        self.client_errors = 0
        self.server_errors = 0
        self.transport_errors = 0
        self.cache_hits = 0
        self.edits = 0
        self.edit_rejected = 0
        self.latency: Dict[str, List[float]] = {}
        self.problems: List[str] = []


def _client_loop(
    index: int,
    config: SoakConfig,
    base: str,
    stop_at: float,
    stats: _ClientStats,
) -> None:
    import random

    rng = random.Random(config.seed * 1000 + index)
    while time.monotonic() < stop_at:
        band, size, _budget = config.bands[rng.randrange(len(config.bands))]
        graph_seed = rng.randrange(config.graphs_per_band)
        body = {
            "client": f"soak-{index}",
            "synth": {"seed": graph_seed, "size": size},
        }
        editing = rng.random() < config.edit_rate
        if editing:
            # random_cfg's interior nodes are n0..n{size-1}: an interior
            # pair is always a valid insertion.  One edit in eight uses the
            # end node as source -- statically invalid -- to exercise the
            # 422 rejection/rollback path on purpose.
            path = "/apply_delta"
            source = "end" if rng.randrange(8) == 0 else f"n{rng.randrange(size)}"
            body["deltas"] = [
                {
                    "op": "add_edge",
                    "source": source,
                    "target": f"n{rng.randrange(size)}",
                }
            ]
        else:
            path = "/run_analysis"
        started = time.perf_counter()
        try:
            status, response = _post(base, path, body)
        except Exception as error:  # connection reset / refused = a failure
            stats.transport_errors += 1
            stats.problems.append(f"transport: {type(error).__name__}: {error}")
            continue
        elapsed = time.perf_counter() - started
        stats.requests += 1
        if status == 200:
            stats.ok += 1
            stats.latency.setdefault(band, []).append(elapsed)
            if editing:
                stats.edits += 1
            elif response.get("cached"):
                stats.cache_hits += 1
        elif status == 422 and editing and response.get("error") == "invalid_delta":
            stats.edit_rejected += 1
        elif status == 400 and editing and response.get("error") == "unknown_key":
            stats.edit_rejected += 1
        elif status == 422:
            stats.analysis_failed += 1
        elif status in (429, 503) and response.get("error") == "shed":
            stats.shed += 1
            if "retry_after" not in response or "exit_code" not in response:
                stats.problems.append(f"unstructured shed body: {response}")
        elif status == 503 and response.get("error") == "draining":
            stats.draining_refused += 1
        elif status == 400:
            stats.client_errors += 1
            stats.problems.append(f"unexpected 400: {response}")
        else:
            stats.server_errors += 1
            stats.problems.append(f"status {status}: {response}")


def run_soak(config: Optional[SoakConfig] = None, out=None) -> SoakReport:
    """Run one chaos soak; always returns a report (never raises)."""
    config = config if config is not None else SoakConfig()
    report = SoakReport(config=dict(config.__dict__, bands=list(config.bands)))
    started = time.monotonic()
    report.rss_start_bytes = _rss_bytes()

    server = AnalysisServer(
        ServiceConfig(
            port=0,
            max_cache_bytes=config.max_cache_bytes,
            max_inflight=config.max_inflight,
            soft_inflight=config.soft_inflight,
            rate=config.rate,
            burst=config.burst,
            trace_path=config.trace_path,
        )
    )
    httpd = server.start()
    serve_thread = threading.Thread(
        target=httpd.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    serve_thread.start()
    host, port = server.address
    base = f"http://{host}:{port}"

    plan = FaultPlan(seed=config.seed, rate=config.fault_rate)
    stats = [_ClientStats() for _ in range(config.clients)]
    stop_at = time.monotonic() + config.duration
    try:
        with inject(plan):
            threads = [
                threading.Thread(
                    target=_client_loop,
                    args=(i, config, base, stop_at, stats[i]),
                    name=f"soak-client-{i}",
                )
                for i in range(config.clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            _probe_rate(server, base, report)
            _probe_depth(server, base, report)
        _probe_drain(server, base, report)
    finally:
        try:
            server.shutdown()
        except Exception as error:
            report.failures.append(f"shutdown failed: {error}")

    for s in stats:
        report.requests += s.requests
        report.ok += s.ok
        report.analysis_failed += s.analysis_failed
        report.shed += s.shed
        report.draining_refused += s.draining_refused
        report.client_errors += s.client_errors
        report.server_errors += s.server_errors
        report.transport_errors += s.transport_errors
        report.cache_hits += s.cache_hits
        report.edits += s.edits
        report.edit_rejected += s.edit_rejected
        report.failures.extend(s.problems[:5])
    report.fault_fires = plan.total_fires()

    latency: Dict[str, List[float]] = {}
    for s in stats:
        for band, samples in s.latency.items():
            latency.setdefault(band, []).extend(samples)
    for band, _size, budget in config.bands:
        samples = latency.get(band, [])
        row = {
            "band": band,
            "n": len(samples),
            "p50_s": round(_percentile(samples, 0.50), 6),
            "p99_s": round(_percentile(samples, 0.99), 6),
            "budget_s": budget,
        }
        row["ok"] = row["p99_s"] <= budget
        report.slo.append(row)
        if not row["ok"]:
            report.failures.append(
                f"slo: {band} p99 {row['p99_s']:.3f}s > budget {budget:.2f}s"
            )

    if report.server_errors:
        report.failures.append(f"{report.server_errors} unhandled server error(s)")
    if report.transport_errors:
        report.failures.append(
            f"{report.transport_errors} transport error(s) (connection resets?)"
        )
    if report.requests == 0:
        report.failures.append("workload made no requests")

    report.rss_end_bytes = _rss_bytes()
    if report.rss_start_bytes is not None and report.rss_end_bytes is not None:
        report.rss_bound_bytes = config.max_cache_bytes + config.rss_slack_bytes
        growth = report.rss_end_bytes - report.rss_start_bytes
        if growth > report.rss_bound_bytes:
            report.failures.append(
                f"rss grew {growth / 1e6:.1f}MB > bound "
                f"{report.rss_bound_bytes / 1e6:.1f}MB"
            )

    report.elapsed = time.monotonic() - started
    if out is not None:
        print(report.render(), file=out, flush=True)
    return report


# ----------------------------------------------------------------------
# deterministic probes
# ----------------------------------------------------------------------

def _probe_rate(server: AnalysisServer, base: str, report: SoakReport) -> None:
    """An empty token bucket must yield a structured 429 with Retry-After."""
    if server.config.rate is None:
        report.probes["shed_rate"] = True
        return
    bucket = server.admission.bucket
    previous_rate = bucket.rate
    # Freeze refill for the probe's duration: at production rates a token
    # trickles back during the HTTP round-trip and the shed never fires.
    bucket.rate = 1e-6
    bucket.drain_tokens()
    try:
        status, body = _post(
            base, "/run_analysis", {"synth": {"seed": 0, "size": 4}}
        )
    finally:
        bucket.rate = previous_rate
        bucket.fill_tokens()
    ok = (
        status == 429
        and body.get("error") == "shed"
        and body.get("reason") == "rate"
        and body.get("retry_after") is not None
        and body.get("exit_code") is not None
    )
    report.probes["shed_rate"] = ok
    if not ok:
        report.failures.append(f"rate probe: expected structured 429, got {status} {body}")


def _probe_depth(server: AnalysisServer, base: str, report: SoakReport) -> None:
    """A saturated pool must yield a structured 503 (reason depth)."""
    server.admission.bucket.fill_tokens()  # rate must not mask the depth shed
    held = 0
    try:
        for _ in range(server.config.max_inflight):
            server.admission.acquire()
            held += 1
    except Exception:
        pass  # someone else's request holds a slot; ours suffice
    try:
        status, body = _post(base, "/run_analysis", {"synth": {"seed": 0, "size": 4}})
    finally:
        for _ in range(held):
            server.admission.release()
    ok = (
        status == 503
        and body.get("error") == "shed"
        and body.get("reason") == "depth"
        and body.get("exit_code") is not None
    )
    report.probes["shed_depth"] = ok
    if not ok:
        report.failures.append(f"depth probe: expected structured 503, got {status} {body}")


def _probe_drain(server: AnalysisServer, base: str, report: SoakReport) -> None:
    """Draining must finish in-flight work and refuse new work, visibly."""
    inflight_result: Dict[str, Any] = {}
    release = threading.Event()
    entered = threading.Event()

    def parked() -> None:
        # Hold an inflight slot through the drain transition, exactly as a
        # long request would, then finish normally.
        try:
            with server.drain.track():
                entered.set()
                release.wait(timeout=10.0)
            inflight_result["ok"] = True
        except Exception as error:
            inflight_result["error"] = str(error)

    thread = threading.Thread(target=parked)
    thread.start()
    entered.wait(timeout=5.0)
    server.drain.request_drain(reason="soak-probe")

    ok = True
    try:
        with urllib.request.urlopen(base + "/healthz", timeout=5.0) as response:
            ok = False  # draining /healthz must not be 200
            report.failures.append(f"drain probe: healthz {response.status} while draining")
    except urllib.error.HTTPError as error:
        if error.code != 503:
            ok = False
            report.failures.append(f"drain probe: healthz {error.code}, wanted 503")

    status, body = _post(base, "/run_analysis", {"synth": {"seed": 0, "size": 4}})
    if status != 503 or body.get("error") != "draining":
        ok = False
        report.failures.append(
            f"drain probe: new work got {status} {body}, wanted 503 draining"
        )

    release.set()
    thread.join(timeout=10.0)
    if not inflight_result.get("ok"):
        ok = False
        report.failures.append(
            f"drain probe: in-flight work did not complete: {inflight_result}"
        )
    report.probes["drain"] = ok


# ----------------------------------------------------------------------
# BENCH_perf.json integration
# ----------------------------------------------------------------------

def update_bench_perf(report: SoakReport, path: str) -> None:
    """Write the report's SLO rows into ``BENCH_perf.json`` (key
    ``service_slo``), creating the file if needed, preserving the rest."""
    data: Dict[str, Any] = {}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    data["service_slo"] = {
        "requests": report.requests,
        "clients": report.config.get("clients"),
        "seed": report.config.get("seed"),
        "fault_fires": report.fault_fires,
        "rows": report.slo,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")
