"""Random raw-CFG generators (no front end involved).

These produce arbitrary *valid* CFGs -- including heavily irreducible ones
-- by construction: a spine guarantees that every node is on a start-to-end
path, and random extra edges only ever add connectivity.  They drive the
property-based tests and the scaling benchmarks where graph size must be
controlled precisely.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.cfg.graph import CFG, NodeId


def random_cfg(
    seed: int,
    num_nodes: int = 20,
    extra_edges: int = 10,
    self_loop_rate: float = 0.05,
    parallel_rate: float = 0.05,
    name: Optional[str] = None,
) -> CFG:
    """A random valid CFG with ``num_nodes`` interior nodes.

    A start-to-end spine threads every interior node, then ``extra_edges``
    random edges (forward, backward, self-loops, parallel pairs per the
    rates) are sprinkled on top.  Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    cfg = CFG(start="start", end="end", name=name or f"random{seed}")
    interior: List[NodeId] = [f"n{i}" for i in range(num_nodes)]
    previous: NodeId = "start"
    for node in interior:
        cfg.add_edge(previous, node)
        previous = node
    cfg.add_edge(previous, "end")

    sources = ["start"] + interior
    targets = interior + ["end"]
    for _ in range(extra_edges):
        roll = rng.random()
        if interior and roll < self_loop_rate:
            node = rng.choice(interior)
            cfg.add_edge(node, node)
        elif roll < self_loop_rate + parallel_rate:
            source = rng.choice(sources)
            target = rng.choice(targets)
            cfg.add_edge(source, target)
            cfg.add_edge(source, target)
        else:
            cfg.add_edge(rng.choice(sources), rng.choice(targets))
    return cfg


def random_dag_cfg(seed: int, num_nodes: int = 20, extra_edges: int = 10, name: Optional[str] = None) -> CFG:
    """A random acyclic valid CFG (extra edges only go forward)."""
    rng = random.Random(seed)
    cfg = CFG(start="start", end="end", name=name or f"dag{seed}")
    interior = [f"n{i}" for i in range(num_nodes)]
    previous: NodeId = "start"
    for node in interior:
        cfg.add_edge(previous, node)
        previous = node
    cfg.add_edge(previous, "end")
    indexed = ["start"] + interior + ["end"]
    for _ in range(extra_edges):
        i = rng.randrange(0, len(indexed) - 1)
        j = rng.randrange(i + 1, len(indexed))
        cfg.add_edge(indexed[i], indexed[j])
    return cfg
