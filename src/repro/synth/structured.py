"""Random MiniLang procedure generation.

The generator produces procedures with the control-flow mix of typical
numerical FORTRAN code (mostly straight-line assignments, conditionals and
loops, shallow nesting), with optional goto injection to create the
unstructured and irreducible shapes that 72 of the paper's 254 procedures
exhibit.  All randomness flows through an explicit :class:`random.Random`
so corpora are reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.ir import LoweredProcedure
from repro.lang import astnodes as ast
from repro.lang.lower import lower_procedure

_OPS = ["+", "-", "*", "+", "-"]
_CMP = ["<", "<=", ">", ">=", "==", "!="]


class _Generator:
    def __init__(self, rng: random.Random, goto_rate: float, deep_nesting: bool = False):
        self.rng = rng
        self.goto_rate = goto_rate
        self.deep_nesting = deep_nesting
        self.variables: List[str] = []  # every variable ever created
        self.live: List[str] = []  # lexically in-scope variables
        self.loop_depth = 0
        self.emitted_labels: List[str] = []
        self.used_labels: List[str] = []
        self._label_counter = 0

    # -- expressions -----------------------------------------------------
    def variable(self) -> str:
        """Pick (or create) a variable to assign, with lexical locality.

        Real programs use mostly short-lived locals: temporaries whose defs
        and uses cluster inside one region, plus a few long-lived outer
        variables.  The paper's sparsity results (Figure 10, the QPG sizes)
        depend on that locality, so the generator models lexical scopes: a
        nested block's temporaries die when the block ends (see
        :meth:`statements`), and references strongly prefer the innermost
        live ones.
        """
        rng = self.rng
        if not self.live or rng.random() < 0.3:
            name = f"v{len(self.variables)}"
            self.variables.append(name)
            self.live.append(name)
            return name
        return self._local_choice()

    def _local_choice(self) -> str:
        rng = self.rng
        roll = rng.random()
        if roll < 0.85 or not self.variables:
            window = self.live[-3:] or self.live  # innermost temporaries
        elif roll < 0.97 and self.live:
            window = self.live  # any enclosing scope
        else:
            window = self.variables  # rare "global" reuse
        return rng.choice(window)

    def atom(self) -> ast.Expr:
        if self.live and self.rng.random() < 0.7:
            return ast.Var(self._local_choice())
        return ast.Num(self.rng.randint(0, 99))

    def arith(self, depth: int = 2) -> ast.Expr:
        if depth <= 0 or self.rng.random() < 0.4:
            return self.atom()
        return ast.BinOp(self.rng.choice(_OPS), self.arith(depth - 1), self.arith(depth - 1))

    def condition(self) -> ast.Expr:
        return ast.BinOp(self.rng.choice(_CMP), self.atom(), self.atom())

    # -- statements -------------------------------------------------------
    def statements(self, budget: int, depth: int) -> List[ast.Stmt]:
        """Generate a block; variables created inside go out of scope after."""
        scope_mark = len(self.live)
        out: List[ast.Stmt] = []
        while budget > 0:
            statement, cost = self.statement(budget, depth)
            out.append(statement)
            budget -= cost
        if depth > 0:
            del self.live[scope_mark:]
        return out

    def statement(self, budget: int, depth: int) -> "tuple[ast.Stmt, int]":
        rng = self.rng
        roll = rng.random()
        # Deep nesting and tiny budgets fall back to plain assignments; real
        # programs nest shallowly most of the time but occasionally reach
        # depth ~13 (the paper's maximum), so the cap is generous.
        if budget < 3 or depth >= 10:
            roll = 1.0

        def inner_budget(cap_fraction: float = 0.75) -> int:
            if self.deep_nesting:
                cap_fraction = 0.95
            upper = max(2, int((budget - 1) * cap_fraction))
            lower = max(2, upper * 3 // 4) if self.deep_nesting else 2
            return max(1, min(budget - 1, rng.randint(lower, max(lower, upper))))

        if roll < 0.13:
            inner = inner_budget()
            then = ast.Block(self.statements((inner + 1) // 2, depth + 1))
            els: Optional[ast.Block] = None
            if rng.random() < 0.6:
                els = ast.Block(self.statements(inner // 2 + 1, depth + 1))
            return ast.If(self.condition(), then, els), inner + 1
        if roll < 0.19:
            inner = inner_budget()
            return ast.While(self.condition(), ast.Block(self.body(inner, depth + 1))), inner + 1
        if roll < 0.24:
            inner = inner_budget()
            return (
                ast.For(self.variable(), self.atom(), self.atom(), ast.Block(self.body(inner, depth + 1))),
                inner + 1,
            )
        if roll < 0.27:
            inner = inner_budget(0.5)
            return ast.Repeat(ast.Block(self.body(inner, depth + 1)), self.condition()), inner + 1
        if roll < 0.30 and budget >= 4:
            arms = rng.randint(2, min(4, budget - 1))
            per_arm = max(1, (budget - 1) // (arms + 1))
            cases = [(i, ast.Block(self.statements(per_arm, depth + 1))) for i in range(arms)]
            default = ast.Block(self.statements(per_arm, depth + 1)) if rng.random() < 0.5 else None
            return ast.Switch(self.atom(), cases, default), arms * per_arm + 1
        if roll < 0.30 + self.goto_rate:
            return self.goto_or_label(), 1
        return ast.Assign(self.variable(), self.arith()), 1

    def body(self, budget: int, depth: int) -> List[ast.Stmt]:
        """Loop body: statements, possibly ending with break/continue.

        Early loop exits are kept rare (FORTRAN-era code mostly used plain
        counted loops); they are one of the sources of unstructured regions,
        and the rate below is calibrated so that, together with goto
        injection, about 182 of the 254 corpus procedures end up completely
        structured -- the paper's measurement.
        """
        self.loop_depth += 1
        statements = self.statements(budget, depth)
        if self.loop_depth > 0 and self.rng.random() < 0.05:
            guard = ast.If(
                self.condition(),
                ast.Block([ast.Break() if self.rng.random() < 0.5 else ast.Continue()]),
            )
            statements.append(guard)
        self.loop_depth -= 1
        return statements

    def goto_or_label(self) -> ast.Stmt:
        rng = self.rng
        if rng.random() < 0.5 or not self.emitted_labels:
            name = f"L{self._label_counter}"
            self._label_counter += 1
            self.emitted_labels.append(name)
            return ast.Label(name)
        # Gotos are always guarded by a conditional so the fall-through edge
        # survives: an unguarded backward goto could form a loop with no exit,
        # violating Definition 1 (every node must reach `end`).
        if rng.random() < 0.85:
            label = rng.choice(self.emitted_labels)  # backward or cross jump
        else:
            label = f"L{self._label_counter}"  # forward jump; label appended later
            self._label_counter += 1
        self.used_labels.append(label)
        return ast.If(self.condition(), ast.Block([ast.Goto(label)]))


def random_procedure_ast(
    seed: int,
    target_statements: int = 30,
    goto_rate: float = 0.0,
    name: Optional[str] = None,
    deep_nesting: bool = False,
) -> ast.Procedure:
    """A random procedure AST with roughly ``target_statements`` statements.

    ``goto_rate`` > 0 sprinkles labels and (possibly backward, possibly
    loop-crossing) gotos through the body, producing unstructured and
    occasionally irreducible CFGs.  Same seed, same procedure.
    """
    rng = random.Random(seed)
    generator = _Generator(rng, goto_rate, deep_nesting)
    params = [f"p{i}" for i in range(rng.randint(0, 3))]
    generator.variables.extend(params)
    generator.live.extend(params)
    statements = generator.statements(max(1, target_statements), 0)
    # Ensure every used label exists (missing ones are appended at the end).
    missing = sorted(set(generator.used_labels) - set(generator.emitted_labels))
    for label in missing:
        statements.append(ast.Label(label))
    statements.append(ast.Return(ast.Var(generator.variable())))
    return ast.Procedure(name or f"p{seed}", params, ast.Block(statements))


def random_lowered_procedure(
    seed: int,
    target_statements: int = 30,
    goto_rate: float = 0.0,
    name: Optional[str] = None,
    deep_nesting: bool = False,
) -> LoweredProcedure:
    """Generate and lower a random procedure (validated CFG guaranteed)."""
    procedure = random_procedure_ast(seed, target_statements, goto_rate, name, deep_nesting)
    return lower_procedure(procedure)
