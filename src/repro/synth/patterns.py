"""Named CFG families with known region structure.

These are the fixtures for unit tests and the parameterized inputs for the
worst-case benchmarks (notably :func:`repeat_until_nest`, the nested
repeat-until loops whose dominance frontiers blow up to Θ(N²) -- §6.1).
"""

from __future__ import annotations

from repro.cfg.builder import cfg_from_edges
from repro.cfg.graph import CFG


def linear(length: int = 3) -> CFG:
    """start -> n0 -> ... -> end; every adjacent edge pair is a region."""
    edges = []
    prev = "start"
    for i in range(length):
        edges.append((prev, f"n{i}"))
        prev = f"n{i}"
    edges.append((prev, "end"))
    return cfg_from_edges(edges, name=f"linear{length}")


def diamond() -> CFG:
    """An if-then-else: two single-node arms meeting at a join."""
    return cfg_from_edges(
        [
            ("start", "c"),
            ("c", "t", "T"),
            ("c", "f", "F"),
            ("t", "j"),
            ("f", "j"),
            ("j", "end"),
        ],
        name="diamond",
    )


def if_then(arm_length: int = 1) -> CFG:
    """A one-armed conditional (then-arm of ``arm_length`` nodes)."""
    edges = [("start", "c"), ("c", "a0", "T")]
    prev = "a0"
    for i in range(1, arm_length):
        edges.append((prev, f"a{i}"))
        prev = f"a{i}"
    edges += [(prev, "j"), ("c", "j", "F"), ("j", "end")]
    return cfg_from_edges(edges, name=f"if_then{arm_length}")


def loop_while(body_length: int = 1) -> CFG:
    """A while loop: header branches to a body chain or the exit."""
    edges = [("start", "h"), ("h", "b0", "T")]
    prev = "b0"
    for i in range(1, body_length):
        edges.append((prev, f"b{i}"))
        prev = f"b{i}"
    edges += [(prev, "h"), ("h", "x", "F"), ("x", "end")]
    return cfg_from_edges(edges, name=f"while{body_length}")


def nested_loops(depth: int = 3) -> CFG:
    """``depth`` while loops nested inside each other."""
    edges = [("start", "h0")]
    for i in range(depth - 1):
        edges.append((f"h{i}", f"h{i+1}", "T"))
    edges.append((f"h{depth-1}", f"body", "T"))
    edges.append(("body", f"l{depth-1}"))
    for i in range(depth - 1, 0, -1):
        edges.append((f"l{i}", f"h{i}"))  # latch
        edges.append((f"h{i}", f"l{i-1}", "F"))  # inner exit falls to outer latch
    edges.append(("l0", "h0"))
    edges.append(("h0", "x", "F"))
    edges.append(("x", "end"))
    return cfg_from_edges(edges, name=f"nested_loops{depth}")


def repeat_until_nest(depth: int = 3) -> CFG:
    """Nested repeat-until loops: the Θ(N²) dominance-frontier worst case.

    Shape (depth 2)::

        start -> b0 -> b1 -> c1 -> c0 -> end
                        ^     |    |
                        +--F--+    |   (c1 -> b1 latch)
                  ^                |
                  +-------F--------+   (c0 -> b0 latch)

    Every body block ``b_i`` is the target of a latch from ``c_i``, so the
    dominance frontier of ``b_i`` contains all enclosing headers, giving
    quadratic total frontier size ([CFR+91], discussed in §6.1).
    """
    edges = [("start", "b0")]
    for i in range(depth - 1):
        edges.append((f"b{i}", f"b{i+1}"))
    edges.append((f"b{depth-1}", f"c{depth-1}"))
    for i in range(depth - 1, 0, -1):
        edges.append((f"c{i}", f"b{i}", "F"))
        edges.append((f"c{i}", f"c{i-1}", "T"))
    edges.append(("c0", "b0", "F"))
    edges.append(("c0", "end", "T"))
    return cfg_from_edges(edges, name=f"repeat_nest{depth}")


def switch_ladder(arms: int = 4) -> CFG:
    """An ``arms``-way case construct with single-node arms."""
    edges = [("start", "s")]
    for i in range(arms):
        edges.append(("s", f"a{i}", str(i)))
        edges.append((f"a{i}", "j"))
    edges.append(("j", "end"))
    return cfg_from_edges(edges, name=f"switch{arms}")


def sequence_of_diamonds(count: int = 3) -> CFG:
    """``count`` sequentially composed diamonds: a broad, shallow PST."""
    edges = []
    prev = "start"
    for i in range(count):
        c, t, f, j = f"c{i}", f"t{i}", f"f{i}", f"j{i}"
        edges += [(prev, c), (c, t, "T"), (c, f, "F"), (t, j), (f, j)]
        prev = j
    edges.append((prev, "end"))
    return cfg_from_edges(edges, name=f"diamonds{count}")


def irreducible_kernel() -> CFG:
    """The classic two-entry loop: irreducible, still has a valid PST."""
    return cfg_from_edges(
        [
            ("start", "c"),
            ("c", "a", "T"),
            ("c", "b", "F"),
            ("a", "b"),
            ("b", "a"),
            ("a", "x"),
            ("x", "end"),
        ],
        name="irreducible",
    )


def paper_like_example() -> CFG:
    """A graph in the spirit of the paper's Figure 1.

    A conditional containing a loop in one arm and a nested conditional in
    the other, followed by a sequentially composed loop: it exhibits
    nesting, sequential composition, and disjointness of canonical regions
    all at once (used by documentation and tests).
    """
    return cfg_from_edges(
        [
            ("start", "a"),
            ("a", "b", "T"),  # arm with a loop
            ("a", "c", "F"),  # arm with a nested conditional
            ("b", "d"),
            ("d", "b", "T"),
            ("d", "e", "F"),
            ("c", "f", "T"),
            ("c", "g", "F"),
            ("f", "h"),
            ("g", "h"),
            ("h", "e"),
            ("e", "i"),  # sequentially composed loop follows
            ("i", "j"),
            ("j", "i", "T"),
            ("j", "end", "F"),
        ],
        name="figure1_like",
    )
