"""The deterministic benchmark corpus mirroring the paper's §4 table.

The paper measures 254 procedures from the Perfect Club and SPEC89 suites
(plus Linpack) parsed with a FORTRAN front end.  Those sources are not
available here, so this module generates a MiniLang corpus with the same
*shape*: the same suite/program breakdown, the same procedure counts per
program, line counts calibrated to the paper's table, and roughly the same
fraction (~28%) of procedures containing unstructured control flow.

Everything is deterministic: seeds derive from the program name and
procedure index, so every run of the benchmarks sees the identical corpus.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir import LoweredProcedure
from repro.lang.lower import lower_procedure
from repro.lang.pretty import pretty_procedure
from repro.synth.structured import random_procedure_ast

# (suite, program, target lines, procedures) -- the paper's table in §4.
PAPER_TABLE: List[Tuple[str, str, int, int]] = [
    ("Perfect", "APS", 6105, 97),
    ("Perfect", "LGS", 2389, 34),
    ("Perfect", "TFS", 1986, 27),
    ("Perfect", "TIS", 485, 7),
    ("SPEC89", "dnasa7", 1105, 17),
    ("SPEC89", "doduc", 5334, 41),
    ("SPEC89", "fpppp", 2718, 14),
    ("SPEC89", "matrix300", 439, 5),
    ("SPEC89", "tomcatv", 195, 1),
    ("-", "linpack", 793, 11),
]

# Fraction of procedures given goto-injected (unstructured) bodies; the
# paper finds 72/254 procedures are not completely structured.
UNSTRUCTURED_FRACTION = 72 / 254


@dataclass
class CorpusProgram:
    """One synthetic 'program': a named set of lowered procedures."""

    suite: str
    name: str
    procedures: List[LoweredProcedure]
    sources: List[str] = field(default_factory=list)

    @property
    def lines(self) -> int:
        return sum(source.count("\n") for source in self.sources)

    @property
    def num_procedures(self) -> int:
        return len(self.procedures)


_CACHE: Dict[Tuple[int, float], List[CorpusProgram]] = {}


def standard_corpus(scale: float = 1.0, seed: int = 1994) -> List[CorpusProgram]:
    """The 254-procedure corpus (or a scaled-down version for quick runs).

    ``scale`` < 1 shrinks every program proportionally (at least one
    procedure each); results are cached per ``(seed, scale)``.
    """
    key = (seed, scale)
    if key in _CACHE:
        return _CACHE[key]
    rng = random.Random(seed)
    programs: List[CorpusProgram] = []
    for suite, name, lines, procs in PAPER_TABLE:
        count = max(1, round(procs * scale))
        target_lines = max(20, round(lines * scale))
        programs.append(_generate_program(rng, suite, name, target_lines, count))
    _CACHE[key] = programs
    return programs


def _generate_program(
    rng: random.Random, suite: str, name: str, target_lines: int, procedures: int
) -> CorpusProgram:
    # Draw per-procedure sizes from a skewed distribution (many small, a few
    # large), then rescale so the pretty-printed line total lands near the
    # paper's figure.  Roughly 2.2 output lines per generated statement.
    weights = [rng.lognormvariate(0.0, 0.9) for _ in range(procedures)]
    total_weight = sum(weights)
    statements_budget = target_lines / 1.5
    lowered: List[LoweredProcedure] = []
    sources: List[str] = []
    for index, weight in enumerate(weights):
        target = max(3, round(statements_budget * weight / total_weight))
        unstructured = rng.random() < UNSTRUCTURED_FRACTION
        goto_rate = rng.uniform(0.25, 0.50) if unstructured else 0.0
        deep = rng.random() < 0.06  # rare deeply nested procedures (paper max depth: 13)
        seed = rng.randrange(1 << 30)
        ast_proc = random_procedure_ast(
            seed,
            target_statements=target,
            goto_rate=goto_rate,
            name=f"{name}_{index}",
            deep_nesting=deep,
        )
        lowered.append(lower_procedure(ast_proc))
        sources.append(pretty_procedure(ast_proc))
    return CorpusProgram(suite, name, lowered, sources)


def corpus_table(corpus: Optional[List[CorpusProgram]] = None) -> str:
    """Render the §4 benchmark table for the synthetic corpus."""
    corpus = standard_corpus() if corpus is None else corpus
    rows = [f"{'suite':<10} {'program':<12} {'lines':>7} {'procedures':>11}"]
    total_lines = 0
    total_procs = 0
    for program in corpus:
        rows.append(
            f"{program.suite:<10} {program.name:<12} {program.lines:>7} {program.num_procedures:>11}"
        )
        total_lines += program.lines
        total_procs += program.num_procedures
    rows.append(f"{'total':<10} {'':<12} {total_lines:>7} {total_procs:>11}")
    return "\n".join(rows)


def all_procedures(corpus: Optional[List[CorpusProgram]] = None) -> List[LoweredProcedure]:
    """Flat list of every procedure in the corpus."""
    corpus = standard_corpus() if corpus is None else corpus
    out: List[LoweredProcedure] = []
    for program in corpus:
        out.extend(program.procedures)
    return out
