"""Synthetic workloads standing in for the paper's FORTRAN benchmarks.

* :mod:`repro.synth.patterns` -- named CFG families with known structure
  (diamonds, loop nests, the O(N²) repeat-until nest of §6.1, irreducible
  kernels, ...), used by tests and worst-case benchmarks.
* :mod:`repro.synth.structured` -- random MiniLang procedure generator
  (structured control flow, optional goto injection for unstructured and
  irreducible shapes).
* :mod:`repro.synth.unstructured` -- random *valid* CFG generators that do
  not go through the front end (arbitrary, including irreducible, graphs).
* :mod:`repro.synth.corpus` -- the deterministic 254-procedure corpus whose
  per-"program" procedure counts mirror the paper's §4 benchmark table.
"""

from repro.synth.patterns import (
    diamond,
    if_then,
    linear,
    loop_while,
    nested_loops,
    irreducible_kernel,
    repeat_until_nest,
    switch_ladder,
    sequence_of_diamonds,
    paper_like_example,
)
from repro.synth.structured import random_procedure_ast, random_lowered_procedure
from repro.synth.unstructured import random_cfg, random_dag_cfg
from repro.synth.corpus import CorpusProgram, standard_corpus, corpus_table

__all__ = [
    "diamond",
    "if_then",
    "linear",
    "loop_while",
    "nested_loops",
    "irreducible_kernel",
    "repeat_until_nest",
    "switch_ladder",
    "sequence_of_diamonds",
    "paper_like_example",
    "random_procedure_ast",
    "random_lowered_procedure",
    "random_cfg",
    "random_dag_cfg",
    "CorpusProgram",
    "standard_corpus",
    "corpus_table",
]
