"""Experiment F6: Figure 6 -- PST size and depth versus procedure size.

Paper: (a) the number of regions grows with procedure size; (b) the average
nesting depth is roughly independent of procedure size.  We regenerate both
series (bucketed means over the corpus) and assert the two trends.
"""

import statistics

from repro.analysis.pst_stats import procedure_profile
from repro.analysis.tables import format_scatter

from conftest import write_result


def test_fig6_size_vs_depth(benchmark, procedures):
    profile = benchmark.pedantic(
        lambda: procedure_profile(procedures), rounds=1, iterations=1
    )

    size_vs_regions = [(size, regions) for size, regions, _, _ in profile]
    size_vs_depth = [(size, depth) for size, _, depth, _ in profile]

    text = (
        "Experiment F6(a) -- PST size vs procedure size (paper: grows)\n"
        + format_scatter(size_vs_regions, "procedure size", "regions")
        + "\n\n"
        + "Experiment F6(b) -- average depth vs procedure size (paper: flat)\n"
        + format_scatter(size_vs_depth, "procedure size", "avg depth")
        + "\n"
    )
    print("\n" + text)
    write_result("fig6_size_vs_depth", text)

    # trend (a): regions grow with size -- compare small vs large halves
    ordered = sorted(profile)
    half = len(ordered) // 2
    small_regions = statistics.mean(r for _, r, _, _ in ordered[:half])
    large_regions = statistics.mean(r for _, r, _, _ in ordered[half:])
    assert large_regions > small_regions * 2

    # trend (b): depth stays flat (large procedures < 2.5x small ones)
    small_depth = statistics.mean(d for _, _, d, _ in ordered[:half])
    large_depth = statistics.mean(d for _, _, d, _ in ordered[half:])
    assert large_depth < small_depth * 2.5

    benchmark.extra_info["small_mean_regions"] = round(small_regions, 1)
    benchmark.extra_info["large_mean_regions"] = round(large_regions, 1)
    benchmark.extra_info["small_mean_depth"] = round(small_depth, 2)
    benchmark.extra_info["large_mean_depth"] = round(large_depth, 2)
