"""Experiment F10: Figure 10 -- % of regions examined while placing φs.

Paper: 5072 variables; for most variables only a small fraction of SESE
regions is examined -- 70% of variables required examining less than one
fifth of the regions.  The timed kernel is PST-based φ-placement for every
variable of every corpus procedure.
"""

from repro.analysis.tables import format_histogram
from repro.ssa.pst_phi import place_phis_pst

from conftest import write_result


def test_fig10_phi_sparsity(benchmark, procedures, psts):
    def run():
        fractions = []
        for proc, pst in zip(procedures, psts):
            result = place_phis_pst(proc, pst)
            fractions.extend(
                result.examined_fraction(var) for var in result.regions_examined
            )
        return fractions

    fractions = benchmark.pedantic(run, rounds=1, iterations=1)

    buckets = {}
    for fraction in fractions:
        bucket = min(9, int(fraction * 10))
        buckets[bucket] = buckets.get(bucket, 0) + 1
    under_fifth = sum(1 for f in fractions if f < 0.2) / len(fractions)

    lines = [
        "Experiment F10 -- fraction of regions examined per variable "
        "(paper: N=5072; 70% of variables examine < 1/5 of regions)",
        f"variables: {len(fractions)}",
        f"variables examining < 20% of regions: {100 * under_fifth:.1f}%",
        "",
        "histogram (bucket k = [k*10%, (k+1)*10%)):",
        format_histogram(buckets, label="decile"),
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    write_result("fig10_phi_sparsity", text)

    benchmark.extra_info["variables"] = len(fractions)
    benchmark.extra_info["under_fifth_pct"] = round(100 * under_fifth, 1)

    assert len(fractions) > 2000
    assert under_fifth >= 0.5  # paper: ~0.70
