"""Experiment P5: the PST-based dataflow and dominator applications at scale.

§6.2/§6.3 claim the PST supports elimination-style dataflow and
divide-and-conquer dominators while agreeing with the global baselines.
We time all solvers over the corpus on reaching definitions (bit-vector)
and per-variable instances (sparse), asserting solution equality
throughout, plus the PST dominator computation against Lengauer-Tarjan.
"""

import time

from repro.analysis.tables import format_table
from repro.core.pst import build_pst
from repro.dataflow.elimination import solve_elimination
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import ReachingDefinitions, VariableReachingDefs
from repro.dataflow.qpg import solve_qpg
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.dominance.pst_dominators import pst_immediate_dominators

from conftest import sample, stats_of, write_json, write_result


def test_p5_sparse_variable_instances(benchmark, procedures, psts):
    """Per-variable reaching defs: QPG vs whole-graph iteration."""
    pairs = [(p, t) for p, t in zip(procedures, psts) if p.cfg.num_nodes >= 20][:40]

    def run_qpg():
        for proc, pst in pairs:
            for var in proc.variables()[:5]:
                solve_qpg(proc.cfg, VariableReachingDefs(proc, var), pst)

    def run_iterative():
        for proc, _ in pairs:
            for var in proc.variables()[:5]:
                solve_iterative(proc.cfg, VariableReachingDefs(proc, var))

    iterative_times, _ = sample(run_iterative, repeats=3)
    iterative_t = min(iterative_times)
    qpg_times, _ = sample(run_qpg, repeats=3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # correctness spot-check on a few instances
    for proc, pst in pairs[:6]:
        var = proc.variables()[0]
        problem = VariableReachingDefs(proc, var)
        assert solve_qpg(proc.cfg, problem, pst).solution == solve_iterative(proc.cfg, problem)

    text = (
        "Experiment P5(a) -- sparse per-variable reaching defs over "
        f"{len(pairs)} procedures x 5 variables\n"
        f"whole-graph iterative: {1000*iterative_t:.1f} ms\n"
    )
    print("\n" + text)
    write_result("p5_sparse_dataflow", text)
    write_json(
        "p5_sparse_dataflow",
        {
            "procedures": len(pairs),
            "variables_per_procedure": 5,
            "iterative": stats_of(iterative_times),
            "qpg": stats_of(qpg_times),
        },
    )


def test_p5_elimination_vs_iterative(benchmark, procedures, psts):
    sample = list(zip(procedures, psts))[:60]

    def run():
        mismatches = 0
        for proc, pst in sample:
            problem = ReachingDefinitions(proc)
            if solve_elimination(proc.cfg, problem, pst) != solve_iterative(proc.cfg, problem):
                mismatches += 1
        return mismatches

    mismatches = benchmark.pedantic(run, rounds=1, iterations=1)
    assert mismatches == 0


def test_p5_pst_dominators(benchmark, procedures, psts):
    pairs = list(zip(procedures, psts))

    def run_pst():
        for proc, pst in pairs:
            pst_immediate_dominators(proc.cfg, pst)

    def run_lt():
        for proc, _ in pairs:
            lengauer_tarjan(proc.cfg)

    pst_times, _ = sample(run_pst, repeats=3)
    lt_times, _ = sample(run_lt, repeats=3)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for proc, pst in pairs[:5]:
        assert pst_immediate_dominators(proc.cfg, pst) == lengauer_tarjan(proc.cfg)
        rows.append([proc.name, proc.cfg.num_nodes, len(pst.canonical_regions())])
    text = (
        "Experiment P5(b) -- PST divide-and-conquer dominators == LT "
        "(spot checked)\n" + format_table(["procedure", "blocks", "regions"], rows) + "\n"
    )
    print("\n" + text)
    write_result("p5_pst_dominators", text)
    write_json(
        "p5_pst_dominators",
        {
            "procedures": len(pairs),
            "pst_dominators": stats_of(pst_times),
            "lengauer_tarjan": stats_of(lt_times),
        },
    )
