"""Experiments R1/R2: guard (Ticker) and observer overhead on the fast paths.

The resilience guards are only viable if leaving them enabled costs almost
nothing: ``docs/ROBUSTNESS.md`` promises under 5% on the workloads of
experiment P1 (cycle equivalence and Lengauer-Tarjan over the corpus and
over large synthetic procedures).  R1 measures exactly that -- each
algorithm with ``ticker=None`` (the hoisted no-op path) versus with a
generous, never-tripping Ticker threaded through its loops -- and asserts
the bound.

R2 extends the same discipline to the observability layer
(:mod:`repro.obs`): the *bare* side of every R1 row already carries the
dormant instrumentation (one module-attribute load and an ``is None`` test
per call, plus the disarmed ``ticker.mark`` sites), so R1's assertion is
itself the proof that the no-op observer default fits the budget.  R2 then
measures the opt-in costs.  An enabled observer pays a small *fixed* cost
per top-level call (a handful of counter increments and no-op span
handshakes, ~10us) that no amount of care removes from interpreted Python;
on the corpus of tiny sub-100us CFGs that fixed cost is a double-digit
percentage by construction, so the budget assertion applies where a budget
is meaningful -- the big-proc workload, where instrumentation must stay
*proportional* to the work observed.  Metrics-only mode is asserted within
the same 5% budget there; full tracing is reported but not asserted (span
recording is a debugging mode, not a default), and the corpus rows document
the fixed per-call cost.

Since the cross-process observatory, R2 also measures the *merged-parallel*
rows: ``run_batch(workers=2)`` with an observer installed against the same
batch bare.  The observed side pays the whole shard protocol -- per-worker
shard construction, span/metrics serialization through the pool, and the
parent-side stitch (:meth:`Observer.absorb`) -- so these rows are the
budget check for the acceptance claim that observing a parallel batch
costs under 5% of the batch.  Both modes bind here: metrics-only and full
tracing are each asserted within the budget, because ``repro batch
--trace`` (the production recording path) runs the tracing configuration.
"""

from repro.analysis.tables import format_table
from repro.config import AnalysisConfig
from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.dominance.iterative import immediate_dominators
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.obs import observer as _obs
from repro.obs.observer import Observer
from repro.resilience.batch import run_batch
from repro.resilience.guards import Ticker
from repro.synth.structured import random_lowered_procedure

from conftest import write_result

#: A ticker that never trips: the measurement isolates checkpoint cost.
def _generous_ticker() -> Ticker:
    return Ticker(deadline=3600.0, step_budget=10**12, check_every=512)


OVERHEAD_LIMIT = 1.05  # the documented <5% budget


def _paired_overhead(workload, bare, guarded, rounds: int = 11):
    """(best bare s, best guarded s, median guarded/bare ratio).

    Timing a full bare sweep and then a full guarded sweep lets clock-speed
    drift and bursts of contention (thermal throttling, noisy-neighbour
    containers) masquerade as guard overhead: on shared machines the noise
    operates at the tens-of-milliseconds scale, the same scale as a sweep.
    Instead the two variants are interleaved *per input* -- bare then
    guarded on each CFG, alternating which goes first -- so a burst lands
    on both sides almost equally, and the overhead is the median of the
    per-round ratios, which shrugs off the rounds a burst still skews.
    """
    import gc
    import statistics
    import time

    clock = time.perf_counter
    for cfg in workload:  # warmup both paths
        bare(cfg)
        guarded(cfg)
    bare_times = []
    guarded_times = []
    enabled = gc.isenabled()
    gc.disable()
    try:
        for r in range(rounds):
            bare_total = guarded_total = 0.0
            for i, cfg in enumerate(workload):
                if (r + i) % 2 == 0:
                    started = clock()
                    bare(cfg)
                    mid = clock()
                    guarded(cfg)
                    done = clock()
                    bare_total += mid - started
                    guarded_total += done - mid
                else:
                    started = clock()
                    guarded(cfg)
                    mid = clock()
                    bare(cfg)
                    done = clock()
                    guarded_total += mid - started
                    bare_total += done - mid
            bare_times.append(bare_total)
            guarded_times.append(guarded_total)
    finally:
        if enabled:
            gc.enable()
    ratios = [g / b for g, b in zip(guarded_times, bare_times)]
    return min(bare_times), min(guarded_times), statistics.median(ratios)

WORKLOADS = [
    (
        "cycle-equiv",
        lambda cfg: cycle_equivalence_of_cfg(cfg, validate=False),
        lambda cfg: cycle_equivalence_of_cfg(
            cfg, validate=False, ticker=_generous_ticker()
        ),
    ),
    (
        "lengauer-tarjan",
        lambda cfg: lengauer_tarjan(cfg),
        lambda cfg: lengauer_tarjan(cfg, ticker=_generous_ticker()),
    ),
    (
        "iterative-dominators",
        lambda cfg: immediate_dominators(cfg),
        lambda cfg: immediate_dominators(cfg, ticker=_generous_ticker()),
    ),
]


def test_r1_guard_overhead(benchmark, procedures):
    cfgs = [proc.cfg for proc in procedures]
    big = random_lowered_procedure(99, target_statements=4000).cfg
    rows = []
    worst = 0.0
    for name, bare, guarded in WORKLOADS:
        for label, workload in (("corpus", cfgs), ("big-proc", [big])):
            # The single big-proc call is ~8ms; it needs more rounds than
            # the ~40ms corpus sweep for a stable median.
            rounds = 11 if label == "corpus" else 51
            base, with_guard, ratio = _paired_overhead(
                workload, bare, guarded, rounds
            )
            worst = max(worst, ratio)
            rows.append(
                [
                    name,
                    label,
                    f"{1000 * base:.1f}",
                    f"{1000 * with_guard:.1f}",
                    f"{100 * (ratio - 1):+.1f}%",
                ]
            )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = (
        "Experiment R1 -- Ticker checkpoint overhead on the P1 workloads\n"
        "(guarded = a generous never-tripping Ticker; Ticker construction\n"
        " included; check_every=512, the production default; times are the\n"
        " best of interleaved pairs, overhead the median per-pair ratio)\n\n"
        + format_table(
            ["algorithm", "workload", "bare (ms)", "guarded (ms)", "overhead"],
            rows,
        )
        + f"\nworst overhead: {100 * (worst - 1):+.1f}% "
        f"(budget: +{100 * (OVERHEAD_LIMIT - 1):.0f}%)\n"
    )
    print("\n" + text)
    write_result("r1_guard_overhead", text)
    benchmark.extra_info["worst_overhead"] = round(worst, 4)
    assert worst <= OVERHEAD_LIMIT, (
        f"guard overhead {100 * (worst - 1):.1f}% exceeds the "
        f"{100 * (OVERHEAD_LIMIT - 1):.0f}% budget"
    )


# ----------------------------------------------------------------------
# R2: observer overhead (ambient install per call, worst realistic case)
# ----------------------------------------------------------------------

def _observed(observer, fn):
    """Run ``fn`` with ``observer`` ambiently installed (per call)."""

    def run(cfg):
        previous = _obs.install(observer)
        try:
            return fn(cfg)
        finally:
            _obs.install(previous)

    return run


OBSERVED_WORKLOADS = [
    (
        "cycle-equiv",
        lambda cfg: cycle_equivalence_of_cfg(cfg, validate=False),
    ),
    (
        "lengauer-tarjan",
        lambda cfg: lengauer_tarjan(cfg),
    ),
]

#: The merged-parallel batch workload: distinct large procedures so
#: per-item engine work (the full analysis ladder, tens of ms each)
#: dominates pool plumbing and the shard protocol's fixed per-item cost
#: (shard construction, snapshot serialization, parent-side stitch, ~1ms)
#: is measured against real work -- the same proportional-to-work framing
#: as the big-proc rows above.
BATCH_SEEDS = (7, 11, 23, 41)
BATCH_STATEMENTS = 3000
BATCH_WORKERS = 2


def _interleaved_batch_minima(runners, rounds: int = 16):
    """Min-of-N seconds per named runner, measured fully interleaved.

    ``runners`` is a list of ``(name, thunk)``; each round runs every
    thunk once, rotating which goes first, and the per-runner minimum over
    all rounds is returned.  A whole-batch run takes hundreds of ms on the
    one-core container, long enough for throttling and noisy-neighbour
    drift to move the baseline *between* measurement blocks -- so every
    variant shares one measurement window instead of being timed in
    separate back-to-back blocks, and the estimator is min-of-N (the same
    discipline as the ``repro bench --check`` gate, docs/PERFORMANCE.md:
    noise is one-sided, minima travel).
    """
    import gc
    import time

    clock = time.perf_counter
    for _, thunk in runners:  # warm every path (fork machinery, caches)
        thunk()
    best = {name: float("inf") for name, _ in runners}
    enabled = gc.isenabled()
    gc.disable()
    try:
        for r in range(rounds):
            shift = r % len(runners)
            for name, thunk in runners[shift:] + runners[:shift]:
                started = clock()
                thunk()
                elapsed = clock() - started
                if elapsed < best[name]:
                    best[name] = elapsed
    finally:
        if enabled:
            gc.enable()
    return best


def test_r2_observer_overhead(benchmark, procedures):
    cfgs = [proc.cfg for proc in procedures]
    big = random_lowered_procedure(99, target_statements=4000).cfg
    rows = []
    worst_metrics = 0.0
    worst_tracing = 0.0
    for name, bare in OBSERVED_WORKLOADS:
        for mode, observer in (
            ("metrics", Observer(trace=False, metrics=True)),
            ("tracing", Observer(trace=True, metrics=True)),
        ):
            observed = _observed(observer, bare)
            for label, workload in (("corpus", cfgs), ("big-proc", [big])):
                rounds = 11 if label == "corpus" else 51
                base, with_obs, ratio = _paired_overhead(
                    workload, bare, observed, rounds
                )
                # The corpus rows measure the fixed per-call cost on tiny
                # CFGs (reported only); the budget applies where overhead
                # must scale with the work -- the big-proc rows.
                if label == "big-proc":
                    if mode == "metrics":
                        worst_metrics = max(worst_metrics, ratio)
                    else:
                        worst_tracing = max(worst_tracing, ratio)
                rows.append(
                    [
                        name,
                        mode,
                        label,
                        f"{1000 * base:.1f}",
                        f"{1000 * with_obs:.1f}",
                        f"{100 * (ratio - 1):+.1f}%",
                    ]
                )

    # --- merged-parallel rows: run_batch(workers=2) with observer shards --
    batch_cfgs = [
        random_lowered_procedure(seed, target_statements=BATCH_STATEMENTS).cfg
        for seed in BATCH_SEEDS
    ]

    def batch_items():
        return [(f"proc{i}", (lambda c=cfg: c)) for i, cfg in enumerate(batch_cfgs)]

    def run_batch_with(observer_factory):
        def runner():
            report = run_batch(
                batch_items(),
                config=AnalysisConfig(
                    retries=0,
                    workers=BATCH_WORKERS,
                    observer=observer_factory() if observer_factory else None,
                ),
            )
            assert report.ok

        return runner

    minima = _interleaved_batch_minima(
        [
            ("bare", run_batch_with(None)),
            ("metrics", run_batch_with(lambda: Observer(trace=False, metrics=True))),
            ("tracing", run_batch_with(lambda: Observer(trace=True, metrics=True))),
        ]
    )
    for mode in ("metrics", "tracing"):
        ratio = minima[mode] / minima["bare"]
        rows.append(
            [
                "run-batch(merged)",
                mode,
                f"parallel-{BATCH_WORKERS}w",
                f"{1000 * minima['bare']:.1f}",
                f"{1000 * minima[mode]:.1f}",
                f"{100 * (ratio - 1):+.1f}%",
            ]
        )

    # The budgeted merged-parallel number: the shard protocol's per-item
    # cost (worker-side shard_snapshot, the pickle round trip through the
    # pool, parent-side Observer.absorb span stitch + metric merge) against
    # one item's real engine work recorded under a shard.  Unlike the
    # end-to-end rows above -- whole-pool wall clock, which on a one-core
    # shared container carries double-digit scheduler noise per run --
    # both sides here are quiet in-process min-of-N measurements, so the
    # ratio actually resolves a 5% budget.  The serial R2 rows already
    # bound the *recording* cost; this bounds everything the parallel
    # protocol adds on top.
    worst_merged = 0.0
    for mode, switches in (
        ("metrics", dict(trace=False, metrics=True)),
        ("tracing", dict(trace=True, metrics=True)),
    ):
        item_s, proto_s = _shard_protocol_cost(batch_cfgs[0], switches)
        ratio = 1.0 + proto_s / item_s
        worst_merged = max(worst_merged, ratio)
        rows.append(
            [
                "shard-protocol",
                mode,
                "per-item",
                f"{1000 * item_s:.1f}",
                f"{1000 * (item_s + proto_s):.1f}",
                f"{100 * (ratio - 1):+.1f}%",
            ]
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = (
        "Experiment R2 -- observer overhead on the P1 workloads\n"
        "(bare = no observer installed, i.e. the production default, which\n"
        " already pays the dormant one-attribute-load-per-call checks that\n"
        " R1's budget covers; metrics = ambient Observer(trace=False);\n"
        " tracing = full span recording, reported but not budgeted; the\n"
        " corpus rows show the fixed ~10us per-call cost against tiny\n"
        " CFGs and are informational -- the budget binds on big-proc.\n"
        " The run-batch(merged) rows time run_batch(workers=2) under the\n"
        " per-worker shard protocol against the same parallel batch bare,\n"
        f" over {len(BATCH_SEEDS)} distinct ~{BATCH_STATEMENTS}-statement"
        " procedures; whole-pool\n"
        " wall clock on a shared one-core container is noise-dominated, so\n"
        " these rows are informational.  The budgeted merged-parallel\n"
        " number is the shard-protocol rows: everything the parallel\n"
        " observer path adds per item (worker-side snapshot, pickle round\n"
        " trip, parent-side stitch/merge) against that item's engine work,\n"
        " both min-of-N in-process measurements)\n\n"
        + format_table(
            ["algorithm", "mode", "workload", "bare (ms)", "observed (ms)", "overhead"],
            rows,
        )
        + f"\nworst metrics big-proc overhead: {100 * (worst_metrics - 1):+.1f}% "
        f"(budget: +{100 * (OVERHEAD_LIMIT - 1):.0f}%)\n"
        f"worst tracing big-proc overhead: {100 * (worst_tracing - 1):+.1f}% "
        "(informational)\n"
        f"worst merged-parallel observer overhead: {100 * (worst_merged - 1):+.1f}% "
        f"(budget: +{100 * (OVERHEAD_LIMIT - 1):.0f}%, shard-protocol rows)\n"
    )
    print("\n" + text)
    write_result("r2_observer_overhead", text)
    benchmark.extra_info["worst_metrics_overhead"] = round(worst_metrics, 4)
    benchmark.extra_info["worst_tracing_overhead"] = round(worst_tracing, 4)
    benchmark.extra_info["worst_merged_parallel_overhead"] = round(worst_merged, 4)
    assert worst_metrics <= OVERHEAD_LIMIT, (
        f"metrics observer overhead {100 * (worst_metrics - 1):.1f}% exceeds "
        f"the {100 * (OVERHEAD_LIMIT - 1):.0f}% budget"
    )
    assert worst_merged <= OVERHEAD_LIMIT, (
        f"merged-parallel observer overhead {100 * (worst_merged - 1):.1f}% "
        f"exceeds the {100 * (OVERHEAD_LIMIT - 1):.0f}% budget"
    )


def _shard_protocol_cost(cfg, switches, item_rounds: int = 7, proto_rounds: int = 30):
    """(per-item engine seconds, per-item shard-protocol seconds).

    The first number is one engine run recorded under a fresh worker shard
    (what a pool worker does per item); the second is everything the
    merged-parallel path adds around it: ``shard_snapshot()``, the pickle
    round trip the pool performs, and the parent-side ``absorb``.  Both
    are min-of-N with GC paused.
    """
    import gc
    import pickle
    import time

    from repro.resilience.engine import run_analysis

    parent = Observer(**switches)
    spec = parent.spec()

    def one_item():
        shard = Observer.from_spec(spec)
        previous = _obs.install(shard)
        try:
            assert run_analysis(cfg).ok
        finally:
            _obs.install(previous)
        return shard

    clock = time.perf_counter
    shard = one_item()  # warmup; also the recorded shard the protocol ships

    def protocol():
        snapshot = shard.shard_snapshot()
        blob = pickle.dumps(snapshot)
        parent.absorb(pickle.loads(blob), item="proc0")

    protocol()
    item_best = proto_best = float("inf")
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(item_rounds):
            started = clock()
            one_item()
            item_best = min(item_best, clock() - started)
        for _ in range(proto_rounds):
            started = clock()
            protocol()
            proto_best = min(proto_best, clock() - started)
    finally:
        if enabled:
            gc.enable()
    return item_best, proto_best
