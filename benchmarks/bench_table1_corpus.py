"""Experiment T1: the §4 benchmark table (suite / program / lines / procedures).

Paper: 10 programs, 254 procedures, 21549 lines total.  Our corpus mirrors
the suite/program breakdown and procedure counts exactly and calibrates the
line totals; the timing measures corpus generation + lowering itself.
"""

from repro.synth.corpus import corpus_table, standard_corpus

from conftest import write_result


def test_table1_corpus(benchmark, corpus):
    def regenerate():
        # bypass the cache to time actual generation + lowering
        return standard_corpus(seed=4242)

    generated = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert sum(p.num_procedures for p in generated) == 254

    table = corpus_table(corpus)
    total_lines = sum(p.lines for p in corpus)
    text = (
        "Experiment T1 -- benchmark corpus (paper: 254 procedures, 21549 lines)\n"
        + table
        + "\n"
    )
    print("\n" + text)
    write_result("table1_corpus", text)
    benchmark.extra_info["procedures"] = 254
    benchmark.extra_info["lines"] = total_lines
    assert 0.7 * 21549 <= total_lines <= 1.3 * 21549
