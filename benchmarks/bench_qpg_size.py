"""Experiment P4: quick-propagation-graph sizes (§6.2).

Paper: "the QPG is usually quite small compared to the original CFG,
averaging less than 10% the size of the (statement-level) CFG" for
single-instance dataflow problems.  We build the QPG of the per-variable
reaching-definitions instance for every variable of every corpus procedure
and report the size ratios against both the statement-level and the
block-level CFG.
"""

import statistics

from repro.analysis.pst_stats import qpg_sizes

from conftest import write_result


def test_p4_qpg_sizes(benchmark, procedures):
    rows = benchmark.pedantic(lambda: qpg_sizes(procedures), rounds=1, iterations=1)
    ratios = [q / max(1, nodes) for nodes, _, q in rows]
    aggregate = sum(q for _, _, q in rows) / sum(n for n, _, _ in rows)

    text = (
        "Experiment P4 -- QPG size for per-variable reaching definitions\n"
        f"instances (one per variable per procedure): {len(rows)}\n"
        f"aggregate QPG size / statement-level CFG size: {100 * aggregate:.1f}% "
        "(paper: < 10%)\n"
        f"per-instance mean: {100 * statistics.mean(ratios):.1f}%  "
        f"median: {100 * statistics.median(ratios):.1f}%\n"
        "(per-instance means are dominated by tiny procedures where start/end\n"
        " alone are a large fraction of the graph)\n"
    )
    print("\n" + text)
    write_result("p4_qpg_size", text)

    benchmark.extra_info["aggregate_pct"] = round(100 * aggregate, 1)
    benchmark.extra_info["mean_pct"] = round(100 * statistics.mean(ratios), 1)
    assert aggregate < 0.10  # the paper's headline claim
    assert statistics.median(ratios) < 0.25
