"""Ablation A3: the dataflow solver family on one workload (§6.2 landscape).

The paper situates the PST among elimination methods ([AC76] intervals,
[GW76]) and sparse methods.  This ablation runs reaching definitions over
the corpus with every solver in the library -- whole-graph iterative,
PST elimination (generic two-probe summaries), PST structural (closed-form
block/case regions + hybrid fallback), and Allen-Cocke interval
elimination -- asserting they all agree, and records the relative costs.
The QPG solver is omitted here because its advantage is per-*instance*
sparsity (experiment P4), not whole-problem solving.
"""

from repro.analysis.tables import format_table
from repro.core.pst import build_pst
from repro.dataflow.elimination import solve_elimination
from repro.dataflow.interval_solver import solve_interval
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import ReachingDefinitions
from repro.dataflow.structural import StructuralSolver

from conftest import best_of, write_result


def test_a3_solver_family(benchmark, procedures, psts):
    sample = [
        (proc, pst)
        for proc, pst in zip(procedures, psts)
        if proc.cfg.num_nodes >= 10
    ][:80]
    problems = [ReachingDefinitions(proc) for proc, _ in sample]

    def run_iterative():
        for (proc, _), problem in zip(sample, problems):
            solve_iterative(proc.cfg, problem)

    def run_elimination():
        for (proc, pst), problem in zip(sample, problems):
            solve_elimination(proc.cfg, problem, pst)

    def run_structural():
        for (proc, pst), problem in zip(sample, problems):
            StructuralSolver(proc.cfg, problem, pst).solve()

    def run_interval():
        for (proc, _), problem in zip(sample, problems):
            solve_interval(proc.cfg, problem)

    timings = {}
    for name, fn in [
        ("iterative", run_iterative),
        ("pst elimination", run_elimination),
        ("pst structural", run_structural),
        ("interval [AC76]", run_interval),
    ]:
        timings[name], _ = best_of(fn, repeats=2)

    # agreement check on a slice
    closed_form = 0
    fallback = 0
    for (proc, pst), problem in list(zip(sample, problems))[:25]:
        baseline = solve_iterative(proc.cfg, problem)
        assert solve_elimination(proc.cfg, problem, pst) == baseline
        solver = StructuralSolver(proc.cfg, problem, pst)
        assert solver.solve() == baseline
        closed_form += solver.closed_form_regions
        fallback += solver.iterative_regions
        assert solve_interval(proc.cfg, problem) == baseline

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = [[name, f"{1000*t:.1f}"] for name, t in timings.items()]
    share = 100 * closed_form / max(1, closed_form + fallback)
    text = (
        "Ablation A3 -- reaching definitions over 80 corpus procedures, "
        "every solver (all agree; asserted on 25)\n"
        + format_table(["solver", "time (ms)"], rows)
        + f"\n\nstructural solver: {closed_form} regions closed-form, "
        f"{fallback} fallback ({share:.0f}% closed-form)\n"
    )
    print("\n" + text)
    write_result("a3_solver_family", text)
    benchmark.extra_info["closed_form_share_pct"] = round(share)
    assert share > 50  # most regions of real-ish code are structured