"""Measure and append one generation entry to ``results/BENCH_perf.json``.

The perf trajectory pins, per implementation generation, the wall-clock of
the four hot analyses on the canonical synthetic procedures (seeds
99/21/13, sizes 4000/8000/8000 statements; see the ``description`` field
in the JSON).  PR 3 seeded it with the object-graph vs frozen-CSR pair;
this script re-derives a fresh entry for the *current* tree so later
generations keep the trajectory non-empty without hand-editing timings::

    PYTHONPATH=../src python perf_trajectory.py --label "my generation"      # print
    PYTHONPATH=../src python perf_trajectory.py --label "my generation" --append

Methodology matches the existing entries: best/median of 9 GC-paused
repeats after a warmup call, all four workloads measured in one sitting.
``speedup_median_vs_previous`` is computed against the last recorded
entry; treat it as a weak signal unless both entries came from the same
sitting on the same host (the JSON's ``cpu_count`` plus each entry's
``measured_in_sitting_with_previous`` flag say which comparisons are
strong).  Not a pytest benchmark on purpose: the trajectory should only
gain entries when a generation lands, not on every bench-suite run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

from conftest import git_rev, sample, stats_of  # noqa: E402

RESULTS = os.path.join(os.path.dirname(__file__), "results", "BENCH_perf.json")
REPEATS = 9


def measurements():
    """The four canonical trajectory workloads, measured in one sitting."""
    from repro.controldep.regions_fast import control_regions
    from repro.core.cycle_equiv import cycle_equivalence_of_cfg
    from repro.core.pst import build_pst
    from repro.dominance.lengauer_tarjan import lengauer_tarjan
    from repro.synth.structured import random_lowered_procedure

    big_4000 = random_lowered_procedure(99, target_statements=4000).cfg
    pst_8000 = random_lowered_procedure(21, target_statements=8000).cfg
    regions_8000 = random_lowered_procedure(13, target_statements=8000).cfg

    workloads = {
        "cycle_equiv_4000": lambda: cycle_equivalence_of_cfg(
            big_4000, validate=False
        ),
        "lengauer_tarjan_4000": lambda: lengauer_tarjan(big_4000),
        "build_pst_8000": lambda: build_pst(pst_8000),
        "control_regions_8000": lambda: control_regions(
            regions_8000, validate=False
        ),
    }
    out = {}
    for name, fn in workloads.items():
        times, _ = sample(fn, repeats=REPEATS)
        stats = stats_of(times)
        out[name] = {
            "median_s": stats["median_s"],
            "min_s": stats["min_s"],
            "repeats": stats["repeats"],
        }
        print(
            f"{name}: median {1000 * stats['median_s']:.3f} ms, "
            f"min {1000 * stats['min_s']:.3f} ms",
            file=sys.stderr,
        )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", required=True, help="generation label")
    parser.add_argument(
        "--git-rev", default=None,
        help="revision to record (default: current short rev)",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="write the entry into results/BENCH_perf.json "
        "(default: print it to stdout only)",
    )
    args = parser.parse_args(argv)

    with open(RESULTS) as handle:
        trajectory_file = json.load(handle)
    previous = trajectory_file["trajectory"][-1] if trajectory_file["trajectory"] else None

    measured = measurements()
    entry = {
        "git_rev": args.git_rev or git_rev(),
        "label": args.label,
        "cpu_count": os.cpu_count(),
        "measured_in_sitting_with_previous": False,
        "measurements": measured,
    }
    if previous is not None:
        entry["speedup_median_vs_previous"] = {
            name: round(
                previous["measurements"][name]["median_s"] / stats["median_s"], 2
            )
            for name, stats in measured.items()
            if name in previous.get("measurements", {})
        }

    if args.append:
        trajectory_file["trajectory"].append(entry)
        with open(RESULTS, "w") as handle:
            json.dump(trajectory_file, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"appended {entry['label']!r} to {RESULTS}", file=sys.stderr)
    else:
        json.dump(entry, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
