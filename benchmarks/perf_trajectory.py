"""Measure and append one generation entry to ``results/BENCH_perf.json``.

The perf trajectory pins, per implementation generation, the wall-clock of
the hot analyses on the canonical synthetic procedures (seeds 99/21/13,
sizes 4000/8000/8000 statements; see the ``description`` field in the
JSON).  PR 3 seeded it with the object-graph vs frozen-CSR pair; this
script re-derives a fresh entry for the *current* tree so later
generations keep the trajectory non-empty without hand-editing timings::

    PYTHONPATH=../src python perf_trajectory.py --label "my generation"      # print
    PYTHONPATH=../src python perf_trajectory.py --label "my generation" --append

``--backend`` pins the kernel tier the measurements run under (see
:mod:`repro.kernel.backend`), so a generation pair -- e.g. the array
kernels re-measured back to back with the vectorized tier -- can be
recorded in one sitting; pass ``--same-sitting`` on the second entry to
mark the comparison strong.

``--batch-throughput`` measures a different axis entirely: end-to-end
``run_batch`` items/second (dominators-only config) across CFG size bands
x worker counts x transport (shared-memory CSR segments vs pickled
snapshots), written to the JSON's top-level ``batch_throughput`` key.
Absolute rates are host-bound; the number that travels is the shm/pickle
ratio at equal worker count, which isolates the serialization tax.

``--edit-streams`` measures the incremental edit layer: per-edit
maintenance cost of an :class:`repro.incremental.EditSession` driven
through local add-edge/undo streams, per size band, against the
recompute-from-scratch pipeline on the same graph.  Written to the JSON's
top-level ``edit_streams`` key; the number that travels is the
median-edit speedup (the mean is dragged down by the deliberate
oversize-region full recomputes and is recorded for honesty, not gated).

Methodology matches the existing entries: best/median of 9 GC-paused
repeats after a warmup call, all workloads measured in one sitting.
``speedup_median_vs_previous`` is computed against the last recorded
entry; treat it as a weak signal unless both entries came from the same
sitting on the same host (the JSON's ``cpu_count`` plus each entry's
``measured_in_sitting_with_previous`` flag say which comparisons are
strong).  Not a pytest benchmark on purpose: the trajectory should only
gain entries when a generation lands, not on every bench-suite run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from conftest import git_rev, sample, stats_of  # noqa: E402

RESULTS = os.path.join(os.path.dirname(__file__), "results", "BENCH_perf.json")
REPEATS = 9

#: (band, target_statements, corpus items) for --batch-throughput.
BATCH_BANDS = (("small", 300, 24), ("medium", 1500, 16), ("large", 5000, 12))
BATCH_WORKERS = (1, 2, 4)
BATCH_REPEATS = 3  # best-of, to shave pool-startup jitter

#: (band, target_statements, timed edits) for --edit-streams.
EDIT_BANDS = (("small", 1000, 100), ("medium", 4000, 100), ("large", 8000, 100))


def measurements():
    """The canonical trajectory workloads, measured in one sitting."""
    from repro.controldep.regions_fast import control_regions
    from repro.core.cycle_equiv import cycle_equivalence_of_cfg
    from repro.core.pst import build_pst
    from repro.dataflow.iterative import solve_iterative
    from repro.dataflow.problems import ReachingDefinitions
    from repro.dominance.lengauer_tarjan import lengauer_tarjan
    from repro.synth.structured import random_lowered_procedure

    proc_4000 = random_lowered_procedure(99, target_statements=4000)
    big_4000 = proc_4000.cfg
    pst_8000 = random_lowered_procedure(21, target_statements=8000).cfg
    regions_8000 = random_lowered_procedure(13, target_statements=8000).cfg
    reaching = ReachingDefinitions(proc_4000)

    workloads = {
        "cycle_equiv_4000": lambda: cycle_equivalence_of_cfg(
            big_4000, validate=False
        ),
        "lengauer_tarjan_4000": lambda: lengauer_tarjan(big_4000),
        "build_pst_8000": lambda: build_pst(pst_8000),
        "control_regions_8000": lambda: control_regions(
            regions_8000, validate=False
        ),
        "dataflow_solve_4000": lambda: solve_iterative(big_4000, reaching),
    }
    out = {}
    for name, fn in workloads.items():
        times, _ = sample(fn, repeats=REPEATS)
        stats = stats_of(times)
        out[name] = {
            "median_s": stats["median_s"],
            "min_s": stats["min_s"],
            "repeats": stats["repeats"],
        }
        print(
            f"{name}: median {1000 * stats['median_s']:.3f} ms, "
            f"min {1000 * stats['min_s']:.3f} ms",
            file=sys.stderr,
        )
    return out


def batch_throughput_series():
    """items/sec of run_batch per band x corpus style x workers x transport.

    Dominators-only config: the shared-memory path then stays array-only
    in the worker (no Edge objects are ever built), which is exactly the
    regime the zero-copy protocol targets.  workers=1 is the serial path
    (no pool, no transport) and anchors each band.

    Two corpus styles per band:

    * ``distinct`` -- every item a different graph.  Both transports pay
      one freeze per item somewhere (parent for shm, worker for pickle),
      so the gap is just the serialization tax.
    * ``shared`` -- a sweep: every item the *same* graph (replay/fault
      campaigns, config sweeps).  The batch exports one segment and ships
      a handle per item, while the pickled path re-sends, re-decodes, and
      re-freezes the full graph per item -- the zero-copy headline case.
    """
    from repro.config import AnalysisConfig
    from repro.resilience.batch import run_batch
    from repro.synth.structured import random_lowered_procedure

    rows = []
    for band, statements, items in BATCH_BANDS:
        cfgs = [
            random_lowered_procedure(7 + i, target_statements=statements).cfg
            for i in range(items)
        ]
        nodes = sum(c.num_nodes for c in cfgs) // items
        corpora = {
            "distinct": [(f"i{i}", (lambda c=c: c)) for i, c in enumerate(cfgs)],
            "shared": [(f"s{i}", (lambda c=cfgs[0]: c)) for i in range(items)],
        }

        def run(corpus, workers, shm):
            config = AnalysisConfig(
                workers=workers,
                retries=0,
                analyses=("dominators",),
                shared_batch_memory=shm,
            )
            best = None
            for _ in range(BATCH_REPEATS):
                started = time.perf_counter()
                report = run_batch(list(corpus), config=config)
                elapsed = time.perf_counter() - started
                assert report.ok, report.render()
                best = elapsed if best is None else min(best, elapsed)
            return items / best

        for style, corpus in corpora.items():
            for workers in BATCH_WORKERS:
                base = {
                    "band": band,
                    "corpus": style,
                    "statements": statements,
                    "avg_nodes": nodes,
                    "items": items,
                    "workers": workers,
                }
                if workers == 1:
                    row = {
                        **base,
                        "serial_items_per_s": round(run(corpus, 1, True), 2),
                    }
                else:
                    shm_rate = run(corpus, workers, True)
                    pickle_rate = run(corpus, workers, False)
                    row = {
                        **base,
                        "shm_items_per_s": round(shm_rate, 2),
                        "pickle_items_per_s": round(pickle_rate, 2),
                        "shm_over_pickle": round(shm_rate / pickle_rate, 2),
                    }
                rows.append(row)
                print(f"batch {row}", file=sys.stderr)
    return rows


def edit_stream_series():
    """Per-edit incremental maintenance vs scratch, per size band.

    Reuses :func:`repro.analysis.bench.run_incremental_bench` (the same
    measurement the ``repro bench --check`` gate runs) so the trajectory
    and the gate can never disagree about methodology: local
    add-edge/undo pairs, per-edit times recorded individually, headline
    speedup = scratch seconds / median per-edit seconds.
    """
    from repro.analysis.bench import run_incremental_bench

    rows = []
    for band, statements, edits in EDIT_BANDS:
        result = run_incremental_bench(size=statements, edits=edits)
        row = {
            "band": band,
            "statements": statements,
            "nodes": result["nodes"],
            "edges": result["edges"],
            "edits": result["edits"],
            "scratch_ms": round(1000 * result["scratch_s"], 3),
            "per_edit_median_ms": round(1000 * result["per_edit_median_s"], 4),
            "per_edit_mean_ms": round(1000 * result["per_edit_mean_s"], 4),
            "median_speedup": round(result["speedup"], 1),
            "mean_speedup": round(result["mean_speedup"], 1),
            "splices": result["stats"]["splices"],
            "full_recomputes": result["stats"]["full_recomputes"],
        }
        rows.append(row)
        print(f"edit-stream {row}", file=sys.stderr)
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default=None, help="generation label")
    parser.add_argument(
        "--backend", default="auto", choices=("auto", "kernel", "vectorized"),
        help="kernel tier to measure under (default auto)",
    )
    parser.add_argument(
        "--same-sitting", action="store_true",
        help="mark the entry as measured in the same sitting as the "
        "previous one (makes speedup_median_vs_previous a strong claim)",
    )
    parser.add_argument(
        "--batch-throughput", action="store_true",
        help="measure run_batch items/sec (bands x workers x transport) "
        "into the JSON's batch_throughput key instead of a trajectory entry",
    )
    parser.add_argument(
        "--edit-streams", action="store_true",
        help="measure incremental per-edit maintenance vs scratch (size "
        "bands) into the JSON's edit_streams key instead of a trajectory "
        "entry",
    )
    parser.add_argument(
        "--git-rev", default=None,
        help="revision to record (default: current short rev)",
    )
    parser.add_argument(
        "--append", action="store_true",
        help="write the entry into results/BENCH_perf.json "
        "(default: print it to stdout only)",
    )
    args = parser.parse_args(argv)

    with open(RESULTS) as handle:
        trajectory_file = json.load(handle)

    if args.batch_throughput:
        block = {
            "git_rev": args.git_rev or git_rev(),
            "cpu_count": os.cpu_count(),
            "config": "dominators-only, retries=0, best of "
            f"{BATCH_REPEATS} runs per cell",
            "rows": batch_throughput_series(),
        }
        if args.append:
            trajectory_file["batch_throughput"] = block
            with open(RESULTS, "w") as handle:
                json.dump(trajectory_file, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote batch_throughput block to {RESULTS}", file=sys.stderr)
        else:
            json.dump(block, sys.stdout, indent=2, sort_keys=True)
            print()
        return 0

    if args.edit_streams:
        block = {
            "git_rev": args.git_rev or git_rev(),
            "cpu_count": os.cpu_count(),
            "config": "local add-edge/undo pairs, seed 42, headline = "
            "scratch / median per-edit",
            "rows": edit_stream_series(),
        }
        if args.append:
            trajectory_file["edit_streams"] = block
            with open(RESULTS, "w") as handle:
                json.dump(trajectory_file, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"wrote edit_streams block to {RESULTS}", file=sys.stderr)
        else:
            json.dump(block, sys.stdout, indent=2, sort_keys=True)
            print()
        return 0

    if not args.label:
        parser.error("--label is required unless --batch-throughput or "
                     "--edit-streams")

    previous = trajectory_file["trajectory"][-1] if trajectory_file["trajectory"] else None

    from repro.kernel.backend import use_backend

    with use_backend(args.backend):
        measured = measurements()
    entry = {
        "git_rev": args.git_rev or git_rev(),
        "label": args.label,
        "backend": args.backend,
        "cpu_count": os.cpu_count(),
        "measured_in_sitting_with_previous": bool(args.same_sitting),
        "measurements": measured,
    }
    if previous is not None:
        entry["speedup_median_vs_previous"] = {
            name: round(
                previous["measurements"][name]["median_s"] / stats["median_s"], 2
            )
            for name, stats in measured.items()
            if name in previous.get("measurements", {})
        }

    if args.append:
        trajectory_file["trajectory"].append(entry)
        with open(RESULTS, "w") as handle:
            json.dump(trajectory_file, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"appended {entry['label']!r} to {RESULTS}", file=sys.stderr)
    else:
        json.dump(entry, sys.stdout, indent=2, sort_keys=True)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
