"""Ablation A1: compact bracket-set names vs full bracket sets (§3.3 vs §3.5).

The paper motivates the ``<topmost bracket, set size>`` compact naming by
noting that "building and comparing sets is expensive, so the [slow]
algorithm is inefficient".  This ablation quantifies that: the §3.3
algorithm (full bracket set per tree edge) against the Figure 4 algorithm,
over a size sweep.  Both produce the same partition (asserted); the slow
one's cost grows quadratically because bracket sets have Θ(loop-nesting ×
E) total size.
"""

from repro.analysis.tables import format_table
from repro.core.cycle_equiv import cycle_equivalence_scc
from repro.core.cycle_equiv_slow import cycle_equivalence_bracket_sets, same_partition
from repro.synth.structured import random_lowered_procedure

from conftest import best_of, write_result

SIZES = (100, 400, 1600)


def test_a1_fast(benchmark):
    proc = random_lowered_procedure(5, target_statements=1600)
    augmented, _ = proc.cfg.with_return_edge()
    benchmark.pedantic(
        lambda: cycle_equivalence_scc(augmented, root=proc.cfg.start),
        rounds=3,
        iterations=1,
    )


def test_a1_slow_bracket_sets(benchmark):
    proc = random_lowered_procedure(5, target_statements=1600)
    augmented, _ = proc.cfg.with_return_edge()
    benchmark.pedantic(
        lambda: cycle_equivalence_bracket_sets(augmented), rounds=1, iterations=1
    )


def test_a1_sweep(benchmark):
    rows = []
    pairs = []
    for statements in SIZES:
        proc = random_lowered_procedure(5, target_statements=statements)
        augmented, _ = proc.cfg.with_return_edge()
        fast_t, fast = best_of(
            lambda: cycle_equivalence_scc(augmented, root=proc.cfg.start)
        )
        slow_t, slow = best_of(lambda: cycle_equivalence_bracket_sets(augmented), repeats=1)
        assert same_partition(
            {e: str(c) for e, c in fast.class_of.items()}, slow
        )
        pairs.append((augmented.num_edges, fast_t, slow_t))
        rows.append(
            [
                augmented.num_nodes,
                augmented.num_edges,
                f"{1000*fast_t:.1f}",
                f"{1000*slow_t:.1f}",
                f"{slow_t/fast_t:.1f}",
            ]
        )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = (
        "Ablation A1 -- compact <top bracket, size> names (Figure 4) vs "
        "full bracket sets (§3.3 slow algorithm)\n"
        + format_table(
            ["nodes", "edges", "compact (ms)", "full sets (ms)", "slowdown"], rows
        )
        + "\n"
    )
    print("\n" + text)
    write_result("a1_compact_names", text)

    # the gap must widen with size (the whole point of compact names)
    (e0, f0, s0), (e2, f2, s2) = pairs[0], pairs[-1]
    benchmark.extra_info["small_slowdown"] = round(s0 / f0, 1)
    benchmark.extra_info["large_slowdown"] = round(s2 / f2, 1)
    assert s2 / f2 > s0 / f0
