"""Experiment F1: differential-fuzzing throughput (CFGs/sec).

The fuzz harness (``repro fuzz``, docs/TESTING.md) is only useful as a CI
gate if a few hundred cases fit in seconds.  This benchmark records how many
CFGs per second the harness sustains, split three ways: generation alone,
generation plus the full oracle matrix, and the per-strategy cost of the
matrix (adversarial shapes like irreducible loops are more expensive to
cross-check than structured skeletons).
"""

from repro.analysis.tables import format_table
from repro.fuzz.generator import STRATEGIES, generate_case
from repro.fuzz.oracles import run_oracles
from repro.fuzz.runner import run_fuzz

from conftest import best_of, write_result

SEED = 0
COUNT = 150
SIZE = 10


def test_f1_generation_only(benchmark):
    def generate_batch():
        return [generate_case(SEED + i, size=SIZE) for i in range(COUNT)]

    benchmark.pedantic(generate_batch, rounds=3, iterations=1)


def test_f1_full_campaign(benchmark):
    benchmark.pedantic(
        lambda: run_fuzz(seed=SEED, count=COUNT, size=SIZE), rounds=3, iterations=1
    )


def test_f1_throughput_table(benchmark):
    gen_t, cases = best_of(
        lambda: [generate_case(SEED + i, size=SIZE) for i in range(COUNT)]
    )
    campaign_t, report = best_of(lambda: run_fuzz(seed=SEED, count=COUNT, size=SIZE))
    assert report.ok, report.render()
    assert report.cases_run == COUNT

    rows = [
        ["generation only", COUNT, f"{1000*gen_t:.1f}", f"{COUNT/gen_t:.0f}"],
        ["full oracle matrix", COUNT, f"{1000*campaign_t:.1f}", f"{COUNT/campaign_t:.0f}"],
    ]

    per_strategy = 30
    for strategy in sorted(STRATEGIES):
        batch = [
            generate_case(SEED + i, size=SIZE, strategy=strategy)
            for i in range(per_strategy)
        ]

        def check_batch():
            for case in batch:
                run_oracles(case)

        strat_t, _ = best_of(check_batch)
        rows.append(
            [
                f"  oracles: {strategy}",
                per_strategy,
                f"{1000*strat_t:.1f}",
                f"{per_strategy/strat_t:.0f}",
            ]
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = (
        "Experiment F1 -- fuzz harness throughput "
        f"(seed {SEED}, size {SIZE})\n"
        + format_table(["stage", "CFGs", "best ms", "CFGs/s"], rows)
    )
    path = write_result("f1_fuzz_throughput", text)
    print(f"\n{text}\nwritten to {path}")
