"""Ablation A2: is the whole PST pipeline actually linear in E?

The paper's central complexity claim is O(E) for cycle equivalence, SESE
region discovery, and PST construction.  This bench sweeps an order of
magnitude of procedure sizes and checks that per-edge cost stays within a
small constant band (perfectly flat is unattainable in Python because of
allocator and cache effects, but superlinear behaviour would blow the band
wide open -- compare the CFS90 column in experiment P2).
"""

from repro.analysis.tables import format_table
from repro.core.pst import build_pst
from repro.synth.structured import random_lowered_procedure

from conftest import sample, stats_of, write_json, write_result

SIZES = (500, 2000, 8000)


def test_a2_pst_linear_scaling(benchmark):
    rows = []
    per_edge = []
    series = []
    for statements in SIZES:
        proc = random_lowered_procedure(21, target_statements=statements)
        cfg = proc.cfg
        times, pst = sample(lambda: build_pst(cfg))
        elapsed = min(times)
        per_edge.append(elapsed / cfg.num_edges)
        series.append(
            {
                "statements": statements,
                "nodes": cfg.num_nodes,
                "edges": cfg.num_edges,
                "regions": len(pst.canonical_regions()),
                "build": stats_of(times),
                "us_per_edge": 1e6 * elapsed / cfg.num_edges,
            }
        )
        rows.append(
            [
                cfg.num_nodes,
                cfg.num_edges,
                len(pst.canonical_regions()),
                f"{1000*elapsed:.1f}",
                f"{1e6*elapsed/cfg.num_edges:.2f}",
            ]
        )
    benchmark.pedantic(
        lambda: build_pst(random_lowered_procedure(21, target_statements=2000).cfg),
        rounds=3,
        iterations=1,
    )
    text = (
        "Ablation A2 -- PST construction cost per edge across a 16x size sweep\n"
        + format_table(
            ["nodes", "edges", "regions", "build (ms)", "us/edge"], rows
        )
        + "\n"
    )
    print("\n" + text)
    write_result("a2_linearity", text)
    write_json(
        "a2_linearity",
        {"sizes": series, "per_edge_band": round(max(per_edge) / min(per_edge), 2)},
    )

    benchmark.extra_info["per_edge_band"] = round(max(per_edge) / min(per_edge), 2)
    assert max(per_edge) / min(per_edge) < 3.0
