"""Ablation A2: is the whole PST pipeline actually linear in E?

The paper's central complexity claim is O(E) for cycle equivalence, SESE
region discovery, and PST construction.  This bench sweeps an order of
magnitude of procedure sizes and checks that per-edge cost stays within a
small constant band (perfectly flat is unattainable in Python because of
allocator and cache effects, but superlinear behaviour would blow the band
wide open -- compare the CFS90 column in experiment P2).
"""

from repro.analysis.tables import format_table
from repro.core.pst import build_pst
from repro.synth.structured import random_lowered_procedure

from conftest import best_of, write_result

SIZES = (500, 2000, 8000)


def test_a2_pst_linear_scaling(benchmark):
    rows = []
    per_edge = []
    for statements in SIZES:
        proc = random_lowered_procedure(21, target_statements=statements)
        cfg = proc.cfg
        elapsed, pst = best_of(lambda: build_pst(cfg))
        per_edge.append(elapsed / cfg.num_edges)
        rows.append(
            [
                cfg.num_nodes,
                cfg.num_edges,
                len(pst.canonical_regions()),
                f"{1000*elapsed:.1f}",
                f"{1e6*elapsed/cfg.num_edges:.2f}",
            ]
        )
    benchmark.pedantic(
        lambda: build_pst(random_lowered_procedure(21, target_statements=2000).cfg),
        rounds=3,
        iterations=1,
    )
    text = (
        "Ablation A2 -- PST construction cost per edge across a 16x size sweep\n"
        + format_table(
            ["nodes", "edges", "regions", "build (ms)", "us/edge"], rows
        )
        + "\n"
    )
    print("\n" + text)
    write_result("a2_linearity", text)

    benchmark.extra_info["per_edge_band"] = round(max(per_edge) / min(per_edge), 2)
    assert max(per_edge) / min(per_edge) < 3.0
