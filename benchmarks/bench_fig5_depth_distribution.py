"""Experiment F5: Figure 5 -- distribution of region nesting depth.

Paper: 8609 regions over 254 procedures, average depth 2.68, maximum 13,
~97% of regions at depth <= 6.  The timed kernel is PST construction for
the whole corpus (the paper's O(E) claim exercised at scale); the series is
the per-depth histogram and its cumulative form.
"""

from repro.analysis.pst_stats import depth_distribution
from repro.analysis.tables import format_histogram
from repro.core.pst import build_pst

from conftest import write_result


def test_fig5_depth_distribution(benchmark, procedures, psts):
    def build_all():
        return [build_pst(proc.cfg) for proc in procedures]

    benchmark.pedantic(build_all, rounds=3, iterations=1)

    dist = depth_distribution(psts)
    lines = [
        "Experiment F5 -- region nesting depth (paper: N=8609, avg 2.68, max 13)",
        f"regions: {dist.total}",
        f"average depth: {dist.average:.2f}",
        f"maximum depth: {dist.maximum}",
        f"fraction at depth <= 6: {100 * dist.cumulative_fraction(6):.1f}%  (paper: ~97%)",
        "",
        format_histogram(dist.counts, label="depth"),
    ]
    text = "\n".join(lines) + "\n"
    print("\n" + text)
    write_result("fig5_depth_distribution", text)

    benchmark.extra_info["regions"] = dist.total
    benchmark.extra_info["avg_depth"] = round(dist.average, 2)
    benchmark.extra_info["max_depth"] = dist.maximum

    # shape assertions: broad and shallow, like the paper
    assert dist.total > 3000
    assert 1.5 <= dist.average <= 4.0
    assert dist.cumulative_fraction(6) >= 0.9
