"""Experiment P3: PST φ-placement vs whole-procedure dominance frontiers
on the Θ(N²) worst case (§6.1).

Paper: the total dominance-frontier size of nested repeat-until loops is
quadratic ([CFR+91]); computing frontiers per SESE region avoids the
blowup because every region of the nest has O(1) collapsed size.  We
measure total frontier size (quadratic vs linear) and wall-clock for one
variable's φ-placement.
"""

from repro.analysis.tables import format_table
from repro.core.pst import build_pst
from repro.dominance.frontier import dominance_frontiers
from repro.dominance.tree import dominator_tree
from repro.ir import Assign, LoweredProcedure
from repro.ssa.phi_placement import phi_blocks_cytron
from repro.ssa.pst_phi import place_phis_pst
from repro.synth.patterns import repeat_until_nest

from conftest import sample, stats_of, write_json, write_result

DEPTHS = (25, 50, 100, 200)


def nest_procedure(depth):
    cfg = repeat_until_nest(depth)
    proc = LoweredProcedure(f"nest{depth}", cfg)
    proc.blocks["b0"].append(Assign("x", (), "1"))
    proc.blocks[f"b{depth - 1}"].append(Assign("x", ("x",), "x+1"))
    return proc


def global_frontier_cells(cfg):
    dtree = dominator_tree(cfg)
    frontiers = dominance_frontiers(cfg, dtree)
    return sum(len(s) for s in frontiers.values())


def pst_frontier_cells(cfg):
    pst = build_pst(cfg)
    total = 0
    for region in pst.regions():
        sub, _ = pst.collapsed_cfg(region)
        total += sum(len(s) for s in dominance_frontiers(sub, dominator_tree(sub)).values())
    return total


def test_p3_frontier_blowup(benchmark):
    rows = []
    growth = []
    series = []
    for depth in DEPTHS:
        proc = nest_procedure(depth)
        global_cells = global_frontier_cells(proc.cfg)
        local_cells = pst_frontier_cells(proc.cfg)

        classic_times, classic = sample(lambda: phi_blocks_cytron(proc), repeats=3)
        pst_times, sparse = sample(lambda: place_phis_pst(proc), repeats=3)
        classic_t, pst_t = min(classic_times), min(pst_times)
        assert sparse.phi_blocks == classic

        growth.append((depth, global_cells, local_cells))
        series.append(
            {
                "depth": depth,
                "nodes": proc.cfg.num_nodes,
                "global_df_cells": global_cells,
                "pst_df_cells": local_cells,
                "cytron": stats_of(classic_times),
                "pst": stats_of(pst_times),
            }
        )
        rows.append(
            [
                depth,
                proc.cfg.num_nodes,
                global_cells,
                local_cells,
                f"{1000*classic_t:.1f}",
                f"{1000*pst_t:.1f}",
            ]
        )

    benchmark.pedantic(lambda: place_phis_pst(nest_procedure(100)), rounds=3, iterations=1)
    text = (
        "Experiment P3 -- nested repeat-until loops (paper §6.1: global "
        "dominance frontiers are Θ(N²); per-region frontiers stay linear)\n"
        + format_table(
            ["depth", "nodes", "global DF cells", "PST DF cells", "Cytron (ms)", "PST (ms)"],
            rows,
        )
        + "\n"
    )
    print("\n" + text)
    write_result("p3_ssa_worstcase", text)
    write_json("p3_ssa_worstcase", {"depths": series})

    # shape: global cells grow ~4x when depth doubles; PST cells ~2x.
    (d0, g0, l0), (d3, g3, l3) = growth[0], growth[-1]
    scale = d3 / d0
    benchmark.extra_info["global_growth"] = round(g3 / g0, 1)
    benchmark.extra_info["pst_growth"] = round(l3 / l0, 1)
    assert g3 / g0 > scale * 2  # superlinear (quadratic-ish)
    assert l3 / l0 < scale * 2  # linear-ish
