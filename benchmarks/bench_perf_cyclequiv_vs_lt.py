"""Experiment P1: cycle equivalence vs Lengauer-Tarjan dominators.

Paper (§1, §3): "our empirical results show that it runs faster than
Lengauer and Tarjan's algorithm for finding dominators".  We time both over
the whole corpus and over a size sweep of single large procedures.  The
absolute numbers differ from the authors' C implementation, but the claim
under test is the *relative* one: cycle equivalence is at worst in the same
ballpark as (and typically cheaper than) LT dominators.
"""

from repro.core.cycle_equiv import cycle_equivalence_of_cfg
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.analysis.tables import format_table
from repro.synth.structured import random_lowered_procedure

from conftest import best_of, sample, stats_of, write_json, write_result


def test_p1_corpus_cycle_equivalence(benchmark, procedures):
    def run():
        for proc in procedures:
            cycle_equivalence_of_cfg(proc.cfg, validate=False)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_p1_corpus_lengauer_tarjan(benchmark, procedures):
    def run():
        for proc in procedures:
            lengauer_tarjan(proc.cfg)

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_p1_size_sweep(benchmark, procedures):
    rows = []
    series = []
    for statements in (250, 1000, 4000):
        proc = random_lowered_procedure(99, target_statements=statements)
        cfg = proc.cfg
        ce_times, _ = sample(lambda: cycle_equivalence_of_cfg(cfg, validate=False))
        lt_times, _ = sample(lambda: lengauer_tarjan(cfg))
        ce, lt = min(ce_times), min(lt_times)
        series.append(
            {
                "statements": statements,
                "nodes": cfg.num_nodes,
                "edges": cfg.num_edges,
                "cycle_equiv": stats_of(ce_times),
                "lengauer_tarjan": stats_of(lt_times),
            }
        )
        rows.append([cfg.num_nodes, cfg.num_edges, f"{1000*ce:.1f}", f"{1000*lt:.1f}", f"{ce/lt:.2f}"])

    def run_ce():
        for proc in procedures:
            cycle_equivalence_of_cfg(proc.cfg, validate=False)

    def run_lt():
        for proc in procedures:
            lengauer_tarjan(proc.cfg)

    ce, _ = best_of(run_ce)
    lt, _ = best_of(run_lt)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = (
        "Experiment P1 -- cycle equivalence vs Lengauer-Tarjan dominators\n"
        f"corpus (254 procedures): cycle equivalence {1000*ce:.1f} ms, "
        f"LT dominators {1000*lt:.1f} ms, ratio {ce/lt:.2f}\n"
        "(paper: cycle equivalence faster than LT, in tuned C; our Python\n"
        " version allocates bracket cells per backedge, so it lands within a\n"
        " small constant of the array-based LT rather than below it)\n\n"
        + format_table(["nodes", "edges", "cycle equiv (ms)", "LT (ms)", "ratio"], rows)
        + "\n"
    )
    print("\n" + text)
    write_result("p1_cyclequiv_vs_lt", text)
    write_json(
        "p1_cyclequiv_vs_lt",
        {
            "sizes": series,
            "corpus": {
                "procedures": len(procedures),
                "cycle_equiv_s": ce,
                "lengauer_tarjan_s": lt,
                "ratio": ce / lt,
            },
        },
    )
    benchmark.extra_info["corpus_ratio"] = round(ce / lt, 2)
    # the shape claim: linear scaling, same ballpark as LT (allow slack for
    # Python constant factors; the paper's C version is faster than LT)
    assert ce <= 2.5 * lt
