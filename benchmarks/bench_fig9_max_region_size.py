"""Experiment F9: Figure 9 -- maximum region size versus procedure size.

Paper: the largest proper region of a procedure stays small regardless of
procedure size (which is what makes divide-and-conquer profitable).  We
regenerate the scatter and assert the max-region/procedure-size ratio does
not grow with size.
"""

import statistics

from repro.analysis.pst_stats import procedure_profile
from repro.analysis.tables import format_scatter

from conftest import write_result


def test_fig9_max_region_size(benchmark, procedures):
    profile = benchmark.pedantic(
        lambda: procedure_profile(procedures), rounds=1, iterations=1
    )
    points = [(size, max_region) for size, _, _, max_region in profile]
    text = (
        "Experiment F9 -- maximum region size vs procedure size "
        "(paper: roughly independent)\n"
        + format_scatter(points, "procedure size", "max region size")
        + "\n"
    )
    print("\n" + text)
    write_result("fig9_max_region_size", text)

    # The interesting quantity is the *relative* max region: for the
    # divide-and-conquer argument, large procedures must not be dominated by
    # one giant region more than small ones are.
    ordered = sorted(p for p in profile if p[0] >= 5)
    half = len(ordered) // 2
    small_ratio = statistics.mean(m / s for s, _, _, m in ordered[:half])
    large_ratio = statistics.mean(m / s for s, _, _, m in ordered[half:])
    benchmark.extra_info["small_ratio"] = round(small_ratio, 2)
    benchmark.extra_info["large_ratio"] = round(large_ratio, 2)
    assert large_ratio <= small_ratio * 1.5
