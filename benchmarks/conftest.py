"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md's experiment index).  Besides timing via pytest-benchmark, each
writes its rows/series to ``benchmarks/results/<experiment>.txt`` so the
numbers recorded in EXPERIMENTS.md can be re-derived at any time.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.core.pst import ProgramStructureTree, build_pst
from repro.ir import LoweredProcedure
from repro.synth.corpus import CorpusProgram, all_procedures, standard_corpus

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def corpus() -> List[CorpusProgram]:
    """The full 254-procedure corpus calibrated to the paper's table."""
    return standard_corpus()


@pytest.fixture(scope="session")
def procedures(corpus) -> List[LoweredProcedure]:
    return all_procedures(corpus)


@pytest.fixture(scope="session")
def psts(procedures) -> List[ProgramStructureTree]:
    return [build_pst(proc.cfg) for proc in procedures]


def best_of(fn, repeats: int = 3):
    """(best wall-clock seconds, last result), with warmup and GC paused.

    The corpus fixtures keep a lot of objects alive for the whole session;
    without this, generational GC pauses dominate sub-100ms measurements.
    """
    import gc
    import time

    fn()  # warmup
    best = float("inf")
    result = None
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            elapsed = time.perf_counter() - started
            if elapsed < best:
                best = elapsed
    finally:
        if enabled:
            gc.enable()
    return best, result


def sample(fn, repeats: int = 5):
    """(list of wall-clock seconds, last result) with warmup and GC paused.

    Like :func:`best_of` but keeps every sample so callers can report
    median/stdev in the machine-readable JSON results.
    """
    import gc
    import time

    fn()  # warmup
    times: List[float] = []
    result = None
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            result = fn()
            times.append(time.perf_counter() - started)
    finally:
        if enabled:
            gc.enable()
    return times, result


def stats_of(times) -> dict:
    """Summary statistics for one timed series, in seconds."""
    import statistics

    return {
        "median_s": statistics.median(times),
        "stdev_s": statistics.stdev(times) if len(times) > 1 else 0.0,
        "min_s": min(times),
        "repeats": len(times),
    }


def git_rev() -> str:
    """The current git revision, or "unknown" outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=os.path.dirname(__file__),
            timeout=10,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def write_result(name: str, text: str) -> str:
    """Persist a rendered table/series under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text if text.endswith("\n") else text + "\n")
    return path


def write_json(name: str, payload: dict) -> str:
    """Persist machine-readable results next to the ``.txt`` rendering.

    Stamps the bench name, git revision, and host facts so a results file
    is self-describing when collected into a trajectory.
    """
    import json

    os.makedirs(RESULTS_DIR, exist_ok=True)
    record = {"bench": name, "git_rev": git_rev(), "cpu_count": os.cpu_count()}
    record.update(payload)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
