"""Ablation A4: incremental PST dataflow vs from-scratch re-solves (§6.3).

The paper's closing suggestion -- use the PST to "isolate regions of the
graph where information must be recomputed" -- quantified: a sequence of
single-statement edits to a large procedure, re-solved incrementally and
from scratch.  Correctness (equality with the scratch solve) is asserted
for every edit.
"""

from repro.analysis.tables import format_table
from repro.core.pst import build_pst
from repro.dataflow.incremental import IncrementalDataflow
from repro.dataflow.iterative import solve_iterative
from repro.dataflow.problems import LiveVariables
from repro.ir import Assign
from repro.synth.structured import random_lowered_procedure

from conftest import best_of, write_result


def test_a4_incremental_updates(benchmark):
    proc = random_lowered_procedure(23, target_statements=800, name="editbuf")
    pst = build_pst(proc.cfg)
    engine = IncrementalDataflow(proc.cfg, LiveVariables(proc), pst)

    editable = [
        block
        for block in proc.cfg.nodes
        if any(isinstance(s, Assign) and s.uses for s in proc.blocks.get(block, []))
    ][:12]
    assert editable

    rows = []
    total_incremental = 0.0
    total_full = 0.0
    for block in editable:
        statements = proc.blocks[block]
        index = next(
            i for i, s in enumerate(statements) if isinstance(s, Assign) and s.uses
        )
        old = statements[index]
        statements[index] = Assign(old.target, (), "0")
        problem = LiveVariables(proc)

        inc_t, _ = best_of(lambda: engine.update([block], problem), repeats=1)
        full_t, full = best_of(lambda: solve_iterative(proc.cfg, problem), repeats=1)
        assert engine.solution() == full
        total_incremental += inc_t
        total_full += full_t
        rows.append(
            [
                str(block),
                engine.last_summaries_recomputed,
                engine.last_regions_resolved,
                f"{1000*inc_t:.2f}",
                f"{1000*full_t:.2f}",
            ]
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    regions = len(pst.canonical_regions()) + 1
    speedup = total_full / max(total_incremental, 1e-9)
    text = (
        f"Ablation A4 -- incremental liveness on a {proc.cfg.num_nodes}-block "
        f"procedure with {regions} PST regions (12 single-statement edits)\n"
        + format_table(
            ["edited block", "summaries", "regions resolved", "incremental (ms)", "full (ms)"],
            rows,
        )
        + f"\n\noverall speedup: {speedup:.1f}x\n"
    )
    print("\n" + text)
    write_result("a4_incremental", text)
    benchmark.extra_info["speedup"] = round(speedup, 1)
    assert speedup > 1.5
