"""Experiment P2: O(E) control regions vs the O(EN) CFS90 baseline.

Paper (§5): control regions of arbitrary graphs in O(E), "faster than just
dominator computation, the first step in all previous algorithms".  We
check the crossover: as procedures grow, the paper's algorithm scales
linearly while partition refinement grows superlinearly.
"""

from repro.analysis.tables import format_table
from repro.controldep.regions_cfs import control_regions_cfs
from repro.controldep.regions_fast import control_regions
from repro.dominance.lengauer_tarjan import lengauer_tarjan
from repro.synth.structured import random_lowered_procedure

from conftest import best_of, sample, stats_of, write_json, write_result

# Sizes straddle the crossover: partition refinement is competitive on
# small graphs but goes superlinear by a few thousand edges.
SIZES = (500, 2000, 8000)


def test_p2_fast_control_regions(benchmark):
    proc = random_lowered_procedure(7, target_statements=1000)
    benchmark.pedantic(
        lambda: control_regions(proc.cfg, validate=False), rounds=3, iterations=1
    )


def test_p2_cfs_control_regions(benchmark):
    proc = random_lowered_procedure(7, target_statements=1000)
    benchmark.pedantic(lambda: control_regions_cfs(proc.cfg), rounds=3, iterations=1)


def test_p2_scaling(benchmark):
    rows = []
    ratios = []
    series = []
    for statements in SIZES:
        proc = random_lowered_procedure(13, target_statements=statements)
        cfg = proc.cfg
        fast_times, fast = sample(lambda: control_regions(cfg, validate=False))
        cfs_times, cfs = sample(lambda: control_regions_cfs(cfg), repeats=3)
        lt_times, _ = sample(lambda: lengauer_tarjan(cfg))
        fast_t, cfs_t, lt_t = min(fast_times), min(cfs_times), min(lt_times)
        assert fast == cfs
        ratios.append((cfg.num_edges, fast_t, cfs_t))
        series.append(
            {
                "statements": statements,
                "nodes": cfg.num_nodes,
                "edges": cfg.num_edges,
                "fast": stats_of(fast_times),
                "cfs90": stats_of(cfs_times),
                "lengauer_tarjan": stats_of(lt_times),
            }
        )
        rows.append(
            [
                cfg.num_nodes,
                cfg.num_edges,
                len(fast),
                f"{1000*fast_t:.1f}",
                f"{1000*cfs_t:.1f}",
                f"{1000*lt_t:.1f}",
            ]
        )

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    text = (
        "Experiment P2 -- control regions: O(E) cycle-equivalence algorithm "
        "vs O(EN) CFS90 refinement vs LT dominator baseline\n"
        + format_table(
            ["nodes", "edges", "regions", "fast (ms)", "CFS90 (ms)", "LT dom (ms)"],
            rows,
        )
        + "\n"
    )
    print("\n" + text)
    write_result("p2_control_regions", text)
    write_json("p2_control_regions", {"sizes": series})

    # shape: the fast algorithm's per-edge cost stays flat while the
    # refinement baseline's grows with size.
    (e0, f0, c0), (e2, f2, c2) = ratios[0], ratios[-1]
    fast_growth = (f2 / e2) / (f0 / e0)
    cfs_growth = (c2 / e2) / (c0 / e0)
    benchmark.extra_info["fast_per_edge_growth"] = round(fast_growth, 2)
    benchmark.extra_info["cfs_per_edge_growth"] = round(cfs_growth, 2)
    assert fast_growth < cfs_growth
