"""Experiment F7: Figure 7 -- weighted proportion of regions by kind.

Paper: regions weighted by the number of nested maximal regions; blocks
dominate, most procedures (182 of 254) are completely structured, and only
a small weighted share is cyclic-unstructured.  The timed kernel is the
classifier over the whole corpus.
"""

from repro.analysis.pst_stats import kind_distribution
from repro.analysis.tables import format_table
from repro.core.region_kinds import classify_pst, is_completely_structured

from conftest import write_result


def test_fig7_region_kinds(benchmark, psts):
    weights = benchmark.pedantic(
        lambda: kind_distribution(psts), rounds=1, iterations=1
    )
    total = sum(weights.values())
    structured = sum(
        1 for pst in psts if is_completely_structured(classify_pst(pst))
    )

    rows = [
        [kind.value, weight, f"{100 * weight / total:.1f}%"]
        for kind, weight in sorted(weights.items(), key=lambda kv: -kv[1])
    ]
    text = (
        "Experiment F7 -- weighted region kinds "
        "(paper: blocks dominate; 182/254 procedures completely structured)\n"
        + format_table(["kind", "weight", "share"], rows)
        + f"\n\ncompletely structured procedures: {structured}/254 (paper: 182/254)\n"
    )
    print("\n" + text)
    write_result("fig7_region_kinds", text)

    benchmark.extra_info["structured_procedures"] = structured
    for kind, weight in weights.items():
        benchmark.extra_info[kind.value] = weight

    # shape assertions
    by_kind = {kind.value: weight / total for kind, weight in weights.items()}
    assert max(by_kind, key=by_kind.get) == "block"
    assert by_kind["cyclic"] < 0.25
    assert 254 * 0.55 <= structured <= 254 * 0.95
